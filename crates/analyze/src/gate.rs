//! The CI perf-regression gate: diff a current report against a
//! committed baseline with per-metric, direction-aware tolerances.
//!
//! Both documents are [`flatten`]ed to dotted numeric paths
//! (`latency.remote-write.p99_ns`, `stencil_16.events_per_sec`, …), then
//! each baseline metric is compared under the direction its name
//! implies:
//!
//! * **higher is better** (`*_per_sec`, `*throughput*`) — fail when the
//!   current value drops more than the tolerance below the baseline;
//! * **lower is better** (`*_us`/`*_ns` latencies, `p50`/`p99`/`p999`
//!   tails, `drops`/`retransmits`/`stall`/`discards` counters) — fail
//!   when it rises more than the tolerance above;
//! * **two-sided** (everything else: event counts, bytes moved) — fail
//!   when it moves in either direction.
//!
//! Simulated-time reports are fully deterministic, so their natural
//! tolerance is `0.0`; wall-clock benchmark numbers get loose per-metric
//! overrides. A metric present in the baseline but missing from the
//! current report always fails (a silently vanished metric is how
//! regressions hide).

use crate::report::{flatten, Json};

/// Which way a metric is allowed to move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Larger values are improvements (throughput).
    HigherBetter,
    /// Smaller values are improvements (latency, loss, stall).
    LowerBetter,
    /// Any drift beyond tolerance is suspicious (structural counts).
    TwoSided,
}

/// Infers a metric's direction from its canonical name.
pub fn direction_of(name: &str) -> Direction {
    let leaf = name.rsplit('.').next().unwrap_or(name);
    if leaf.ends_with("_per_sec") || leaf.contains("throughput") {
        return Direction::HigherBetter;
    }
    let lower_markers = [
        "_us",
        "_ns",
        "_ms",
        "p50",
        "p99",
        "p999",
        "drops",
        "dropped",
        "retransmits",
        "stall",
        "discards",
        "latency",
        "wall_seconds",
        "high_water",
        "depth",
    ];
    if lower_markers.iter().any(|m| leaf.contains(m)) {
        return Direction::LowerBetter;
    }
    Direction::TwoSided
}

/// Tolerance configuration: a default relative tolerance plus per-metric
/// overrides (longest matching suffix/exact path wins) and skip
/// patterns (substring match) for metrics that must not be gated at all.
#[derive(Clone, Debug)]
pub struct Tolerances {
    /// Relative tolerance applied when no override matches (e.g. `0.0`
    /// for deterministic simulated-time reports, `0.08` for 8%).
    pub default_rel: f64,
    /// `(pattern, tolerance)` overrides; a pattern matches a metric path
    /// equal to it or ending in `.<pattern>`.
    pub per_metric: Vec<(String, f64)>,
    /// Substring patterns for metrics to exclude from gating entirely
    /// (machine-dependent wall-clock numbers).
    pub skip: Vec<String>,
}

impl Tolerances {
    /// Exact gate for deterministic reports.
    pub fn exact() -> Tolerances {
        Tolerances {
            default_rel: 0.0,
            per_metric: Vec::new(),
            skip: Vec::new(),
        }
    }

    /// The tolerance in effect for `name`, or `None` when skipped.
    pub fn for_metric(&self, name: &str) -> Option<f64> {
        if self.skip.iter().any(|p| name.contains(p.as_str())) {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (pattern, tol) in &self.per_metric {
            let hit = name == pattern || name.ends_with(&format!(".{pattern}"));
            if hit && best.map(|(len, _)| pattern.len() > len).unwrap_or(true) {
                best = Some((pattern.len(), *tol));
            }
        }
        Some(best.map(|(_, t)| t).unwrap_or(self.default_rel))
    }
}

/// One gated metric that moved beyond its tolerance (or vanished).
#[derive(Clone, Debug)]
pub struct GateFailure {
    /// Flattened metric path.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (`None` when the metric disappeared).
    pub current: Option<f64>,
    /// Tolerance that was in effect.
    pub tolerance: f64,
    /// Direction the metric was judged under.
    pub direction: Direction,
}

impl std::fmt::Display for GateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.current {
            None => write!(f, "{}: missing (baseline {})", self.metric, self.baseline),
            Some(cur) => {
                let change = if self.baseline != 0.0 {
                    format!("{:+.1}%", (cur - self.baseline) / self.baseline * 100.0)
                } else {
                    format!("{cur:+}")
                };
                write!(
                    f,
                    "{}: {} -> {} ({}, tol {:.1}%, {:?})",
                    self.metric,
                    self.baseline,
                    cur,
                    change,
                    self.tolerance * 100.0,
                    self.direction
                )
            }
        }
    }
}

/// Outcome of gating one current report against one baseline.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Metrics compared (baseline metrics not skipped).
    pub checked: usize,
    /// Every metric that regressed beyond tolerance.
    pub failures: Vec<GateFailure>,
    /// Metrics in the current report absent from the baseline —
    /// informational (new metrics are fine; the baseline wants
    /// refreshing).
    pub new_metrics: Vec<String>,
}

impl GateResult {
    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Is `cur` within `tol` of `base`, judged under `dir`?
fn within(base: f64, cur: f64, tol: f64, dir: Direction) -> bool {
    // Relative slack; a zero baseline leaves no relative room, so any
    // increase of a lower-better metric from 0 (new drops, new stall)
    // fails unless the tolerance explicitly allows an absolute margin —
    // `tol` doubles as the absolute slack there.
    let slack = if base != 0.0 { tol * base.abs() } else { tol };
    match dir {
        Direction::HigherBetter => cur >= base - slack,
        Direction::LowerBetter => cur <= base + slack,
        Direction::TwoSided => (cur - base).abs() <= slack,
    }
}

/// Diffs `current` against `baseline` under the given tolerances.
pub fn gate_reports(baseline: &Json, current: &Json, tol: &Tolerances) -> GateResult {
    let base_flat = flatten(baseline);
    let cur_flat = flatten(current);
    let cur_map: std::collections::HashMap<&str, f64> = cur_flat
        .iter()
        .map(|(name, value)| (name.as_str(), *value))
        .collect();

    let mut result = GateResult::default();
    for (name, base) in &base_flat {
        let Some(metric_tol) = tol.for_metric(name) else {
            continue;
        };
        result.checked += 1;
        let dir = direction_of(name);
        match cur_map.get(name.as_str()) {
            None => result.failures.push(GateFailure {
                metric: name.clone(),
                baseline: *base,
                current: None,
                tolerance: metric_tol,
                direction: dir,
            }),
            Some(&cur) => {
                if !within(*base, cur, metric_tol, dir) {
                    result.failures.push(GateFailure {
                        metric: name.clone(),
                        baseline: *base,
                        current: Some(cur),
                        tolerance: metric_tol,
                        direction: dir,
                    });
                }
            }
        }
    }
    let base_names: std::collections::HashSet<&str> =
        base_flat.iter().map(|(n, _)| n.as_str()).collect();
    for (name, _) in &cur_flat {
        if !base_names.contains(name.as_str()) {
            result.new_metrics.push(name.clone());
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pairs: &[(&str, f64)]) -> Json {
        let mut o = Json::obj();
        for (k, v) in pairs {
            o.set(k, Json::Num(*v));
        }
        o
    }

    #[test]
    fn directions_are_inferred_from_names() {
        assert_eq!(
            direction_of("stencil_16.events_per_sec"),
            Direction::HigherBetter
        );
        assert_eq!(
            direction_of("latency.remote-write.p99_ns"),
            Direction::LowerBetter
        );
        assert_eq!(
            direction_of("metrics.fabric.retransmits"),
            Direction::LowerBetter
        );
        assert_eq!(
            direction_of("metrics.fabric.bytes_total"),
            Direction::TwoSided
        );
    }

    #[test]
    fn throughput_regression_beyond_tolerance_fails() {
        let base = doc(&[("bench.events_per_sec", 1000.0)]);
        let tol = Tolerances {
            default_rel: 0.08,
            per_metric: Vec::new(),
            skip: Vec::new(),
        };
        // 10% drop vs 8% tolerance: fail.
        let r = gate_reports(&base, &doc(&[("bench.events_per_sec", 900.0)]), &tol);
        assert!(!r.passed());
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].metric, "bench.events_per_sec");
        // 5% drop: pass. 20% *gain*: also pass (higher is better).
        assert!(gate_reports(&base, &doc(&[("bench.events_per_sec", 950.0)]), &tol).passed());
        assert!(gate_reports(&base, &doc(&[("bench.events_per_sec", 1200.0)]), &tol).passed());
    }

    #[test]
    fn tail_latency_regression_fails_and_improvement_passes() {
        let base = doc(&[("latency.send.p99_ns", 800.0)]);
        let tol = Tolerances {
            default_rel: 0.05,
            per_metric: Vec::new(),
            skip: Vec::new(),
        };
        assert!(!gate_reports(&base, &doc(&[("latency.send.p99_ns", 900.0)]), &tol).passed());
        assert!(gate_reports(&base, &doc(&[("latency.send.p99_ns", 600.0)]), &tol).passed());
    }

    #[test]
    fn missing_metrics_fail_and_new_metrics_inform() {
        let base = doc(&[("a.p99_ns", 1.0)]);
        let cur = doc(&[("b.p99_ns", 1.0)]);
        let r = gate_reports(&base, &cur, &Tolerances::exact());
        assert!(!r.passed());
        assert!(r.failures[0].current.is_none());
        assert_eq!(r.new_metrics, vec!["b.p99_ns".to_string()]);
    }

    /// Reader tolerance across the v1 → v2 schema bump: a v1 baseline
    /// (no p999 fields) gates cleanly against a v2 report whose extra
    /// p999 metrics surface as informational `new_metrics`, and both
    /// schema tags are accepted.
    #[test]
    fn v1_field_set_gates_cleanly_against_a_v2_report() {
        use crate::report::{schema_accepted, SCHEMA, SCHEMA_V1};
        assert!(schema_accepted(SCHEMA));
        assert!(schema_accepted(SCHEMA_V1));
        assert!(!schema_accepted("tg-report-v0"));
        let base = doc(&[
            ("campaign.crash.gbn.detect_p50_us", 140.0),
            ("campaign.crash.gbn.detect_p99_us", 150.0),
        ]);
        let cur = doc(&[
            ("campaign.crash.gbn.detect_p50_us", 140.0),
            ("campaign.crash.gbn.detect_p99_us", 150.0),
            ("campaign.crash.gbn.detect_p999_us", 155.0),
        ]);
        let r = gate_reports(&base, &cur, &Tolerances::exact());
        assert!(r.passed(), "failures: {:?}", r.failures);
        assert_eq!(
            r.new_metrics,
            vec!["campaign.crash.gbn.detect_p999_us".to_string()]
        );
    }

    #[test]
    fn overrides_and_skips_apply() {
        let base = doc(&[
            ("bench.events_per_sec", 1000.0),
            ("bench.wall_seconds", 1.0),
        ]);
        let cur = doc(&[
            ("bench.events_per_sec", 500.0),
            ("bench.wall_seconds", 50.0),
        ]);
        let tol = Tolerances {
            default_rel: 0.0,
            per_metric: vec![("events_per_sec".to_string(), 3.0)],
            skip: vec!["wall_seconds".to_string()],
        };
        // events_per_sec halved but tolerance is 300%; wall_seconds skipped.
        let r = gate_reports(&base, &cur, &tol);
        assert!(r.passed(), "failures: {:?}", r.failures);
        assert_eq!(r.checked, 1);
    }

    #[test]
    fn zero_baseline_lower_better_rejects_any_increase() {
        let base = doc(&[("metrics.fabric.drops", 0.0)]);
        let cur = doc(&[("metrics.fabric.drops", 1.0)]);
        assert!(!gate_reports(&base, &cur, &Tolerances::exact()).passed());
    }
}
