//! Property tests for the address machinery: encodings must round-trip
//! for every representable input and translation must be total and
//! consistent.

use proptest::prelude::*;
use tg_mem::{AccessKind, Decoded, Fault, Mmu, PAddr, PageFlags, VAddr};
use tg_wire::{GOffset, NodeId, PAGE_BYTES};

proptest! {
    #[test]
    fn private_round_trips(off in 0u64..0x1_0000_0000) {
        let pa = PAddr::private(off);
        prop_assert_eq!(pa.decode(), Decoded::Private { off });
        prop_assert!(!pa.is_shadow());
    }

    #[test]
    fn local_shared_round_trips(off in 0u64..0x1_0000_0000) {
        let pa = PAddr::local_shared(GOffset::new(off));
        prop_assert_eq!(pa.decode(), Decoded::LocalShared { off: GOffset::new(off) });
    }

    #[test]
    fn remote_round_trips(node in 0u16..u16::MAX, off in 0u64..0x1_0000_0000) {
        let pa = PAddr::remote(NodeId::new(node), GOffset::new(off));
        prop_assert_eq!(
            pa.decode(),
            Decoded::Remote { node: NodeId::new(node), off: GOffset::new(off) }
        );
    }

    #[test]
    fn shadow_is_exactly_the_top_bit(node in 0u16..64, off in 0u64..0x1_0000_0000) {
        let pa = PAddr::remote(NodeId::new(node), GOffset::new(off));
        let sh = pa.shadow();
        prop_assert_eq!(pa.bits() ^ sh.bits(), 1u64 << 63);
        prop_assert_eq!(sh.unshadow(), pa);
        prop_assert_eq!(sh.decode(), pa.decode());
        prop_assert_eq!(sh.shadow(), sh, "shadow is idempotent");
    }

    #[test]
    fn distinct_encodings_never_collide(
        off_a in 0u64..0x1000_0000,
        off_b in 0u64..0x1000_0000,
        node in 0u16..256,
    ) {
        let variants = [
            PAddr::private(off_a),
            PAddr::local_shared(GOffset::new(off_a)),
            PAddr::remote(NodeId::new(node), GOffset::new(off_a)),
            PAddr::hib_reg(off_a),
        ];
        for (i, x) in variants.iter().enumerate() {
            for (j, y) in variants.iter().enumerate() {
                if i != j {
                    prop_assert_ne!(x.bits(), y.bits());
                }
            }
        }
        // Different offsets in the same region differ.
        if off_a != off_b {
            prop_assert_ne!(
                PAddr::private(off_a).bits(),
                PAddr::private(off_b).bits()
            );
        }
    }

    #[test]
    fn translation_is_total_and_consistent(
        mapped_pages in proptest::collection::btree_set(0u64..64, 1..16),
        probe_page in 0u64..64,
        in_page in (0u64..PAGE_BYTES / 8).prop_map(|w| w * 8),
        writable in any::<bool>(),
    ) {
        let mut mmu = Mmu::new();
        for &vp in &mapped_pages {
            let flags = if writable { PageFlags::RW } else { PageFlags::RO };
            mmu.table_mut().map(vp, PAddr::private(vp * PAGE_BYTES), flags);
        }
        let va = VAddr::new(probe_page * PAGE_BYTES + in_page);
        match mmu.translate(va, AccessKind::Read) {
            Ok(pa) => {
                prop_assert!(mapped_pages.contains(&probe_page));
                prop_assert_eq!(
                    pa.decode(),
                    Decoded::Private { off: probe_page * PAGE_BYTES + in_page }
                );
            }
            Err(Fault::Unmapped(fva)) => {
                prop_assert!(!mapped_pages.contains(&probe_page));
                prop_assert_eq!(fva, va);
            }
            Err(other) => prop_assert!(false, "unexpected fault {other:?}"),
        }
        // Writes honor permissions.
        if mapped_pages.contains(&probe_page) {
            let w = mmu.translate(va, AccessKind::Write);
            if writable {
                prop_assert!(w.is_ok());
            } else {
                prop_assert_eq!(w, Err(Fault::Protection(va, AccessKind::Write)));
            }
        }
    }

    #[test]
    fn misalignment_always_faults(
        page in 0u64..16,
        misoff in 1u64..8,
        word in 0u64..1024,
    ) {
        let mut mmu = Mmu::new();
        mmu.table_mut().map(page, PAddr::private(0), PageFlags::RW);
        let va = VAddr::new(page * PAGE_BYTES + word * 8 + misoff);
        prop_assert_eq!(
            mmu.translate(va, AccessKind::Read),
            Err(Fault::Misaligned(va))
        );
    }
}
