//! Randomized tests for the address machinery: encodings must round-trip
//! across the representable input space and translation must be total and
//! consistent. Cases are drawn from a seeded [`tg_sim::SimRng`] so the
//! sweep is deterministic and dependency-free.

use std::collections::BTreeSet;

use tg_mem::{AccessKind, Decoded, Fault, Mmu, PAddr, PageFlags, VAddr};
use tg_sim::SimRng;
use tg_wire::{GOffset, NodeId, PAGE_BYTES};

#[test]
fn private_round_trips() {
    let mut rng = SimRng::new(1);
    for _ in 0..512 {
        let off = rng.range(0x1_0000_0000);
        let pa = PAddr::private(off);
        assert_eq!(pa.decode(), Decoded::Private { off });
        assert!(!pa.is_shadow());
    }
}

#[test]
fn local_shared_round_trips() {
    let mut rng = SimRng::new(2);
    for _ in 0..512 {
        let off = rng.range(0x1_0000_0000);
        let pa = PAddr::local_shared(GOffset::new(off));
        assert_eq!(
            pa.decode(),
            Decoded::LocalShared {
                off: GOffset::new(off)
            }
        );
    }
}

#[test]
fn remote_round_trips() {
    let mut rng = SimRng::new(3);
    for _ in 0..512 {
        let node = rng.range(u64::from(u16::MAX)) as u16;
        let off = rng.range(0x1_0000_0000);
        let pa = PAddr::remote(NodeId::new(node), GOffset::new(off));
        assert_eq!(
            pa.decode(),
            Decoded::Remote {
                node: NodeId::new(node),
                off: GOffset::new(off)
            }
        );
    }
}

#[test]
fn shadow_is_exactly_the_top_bit() {
    let mut rng = SimRng::new(4);
    for _ in 0..512 {
        let node = rng.range(64) as u16;
        let off = rng.range(0x1_0000_0000);
        let pa = PAddr::remote(NodeId::new(node), GOffset::new(off));
        let sh = pa.shadow();
        assert_eq!(pa.bits() ^ sh.bits(), 1u64 << 63);
        assert_eq!(sh.unshadow(), pa);
        assert_eq!(sh.decode(), pa.decode());
        assert_eq!(sh.shadow(), sh, "shadow is idempotent");
    }
}

#[test]
fn distinct_encodings_never_collide() {
    let mut rng = SimRng::new(5);
    for _ in 0..256 {
        let off_a = rng.range(0x1000_0000);
        let off_b = rng.range(0x1000_0000);
        let node = rng.range(256) as u16;
        let variants = [
            PAddr::private(off_a),
            PAddr::local_shared(GOffset::new(off_a)),
            PAddr::remote(NodeId::new(node), GOffset::new(off_a)),
            PAddr::hib_reg(off_a),
        ];
        for (i, x) in variants.iter().enumerate() {
            for (j, y) in variants.iter().enumerate() {
                if i != j {
                    assert_ne!(x.bits(), y.bits());
                }
            }
        }
        // Different offsets in the same region differ.
        if off_a != off_b {
            assert_ne!(PAddr::private(off_a).bits(), PAddr::private(off_b).bits());
        }
    }
}

#[test]
fn translation_is_total_and_consistent() {
    let mut rng = SimRng::new(6);
    for _ in 0..256 {
        let n_mapped = rng.range_between(1, 16) as usize;
        let mut mapped_pages = BTreeSet::new();
        while mapped_pages.len() < n_mapped {
            mapped_pages.insert(rng.range(64));
        }
        let probe_page = rng.range(64);
        let in_page = rng.range(PAGE_BYTES / 8) * 8;
        let writable = rng.chance(0.5);

        let mut mmu = Mmu::new();
        for &vp in &mapped_pages {
            let flags = if writable {
                PageFlags::RW
            } else {
                PageFlags::RO
            };
            mmu.table_mut()
                .map(vp, PAddr::private(vp * PAGE_BYTES), flags);
        }
        let va = VAddr::new(probe_page * PAGE_BYTES + in_page);
        match mmu.translate(va, AccessKind::Read) {
            Ok(pa) => {
                assert!(mapped_pages.contains(&probe_page));
                assert_eq!(
                    pa.decode(),
                    Decoded::Private {
                        off: probe_page * PAGE_BYTES + in_page
                    }
                );
            }
            Err(Fault::Unmapped(fva)) => {
                assert!(!mapped_pages.contains(&probe_page));
                assert_eq!(fva, va);
            }
            Err(other) => panic!("unexpected fault {other:?}"),
        }
        // Writes honor permissions.
        if mapped_pages.contains(&probe_page) {
            let w = mmu.translate(va, AccessKind::Write);
            if writable {
                assert!(w.is_ok());
            } else {
                assert_eq!(w, Err(Fault::Protection(va, AccessKind::Write)));
            }
        }
    }
}

#[test]
fn misalignment_always_faults() {
    let mut rng = SimRng::new(7);
    for _ in 0..256 {
        let page = rng.range(16);
        let misoff = rng.range_between(1, 8);
        let word = rng.range(1024);
        let mut mmu = Mmu::new();
        mmu.table_mut().map(page, PAddr::private(0), PageFlags::RW);
        let va = VAddr::new(page * PAGE_BYTES + word * 8 + misoff);
        assert_eq!(
            mmu.translate(va, AccessKind::Read),
            Err(Fault::Misaligned(va))
        );
    }
}
