//! Virtual addressing: page tables, permissions, shadow translation.

use std::collections::HashMap;
use std::fmt;

use tg_wire::{PAGE_BYTES, PAGE_SHIFT, WORD_BYTES};

use crate::paddr::PAddr;

/// The shadow flag in *virtual* space mirrors the physical one: bit 63.
const V_SHADOW_BIT: u64 = 1 << 63;

/// A virtual address as issued by the simulated processor.
///
/// # Example
///
/// ```
/// use tg_mem::VAddr;
/// let va = VAddr::new(0x4000_0010);
/// assert_eq!(va.vpage(), 0x4000_0000 / 8192);
/// assert_eq!(va.in_page(), 0x10);
/// assert!(va.shadow().is_shadow());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// Creates a virtual address.
    pub const fn new(bits: u64) -> Self {
        VAddr(bits)
    }

    /// Raw bits.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The virtual page number (shadow bit excluded).
    pub const fn vpage(self) -> u64 {
        (self.0 & !V_SHADOW_BIT) >> PAGE_SHIFT
    }

    /// Byte offset within the page.
    pub const fn in_page(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// The shadow twin (top bit set) used to pass physical addresses to the
    /// HIB from user level.
    pub const fn shadow(self) -> Self {
        VAddr(self.0 | V_SHADOW_BIT)
    }

    /// True if the shadow bit is set.
    pub const fn is_shadow(self) -> bool {
        self.0 & V_SHADOW_BIT != 0
    }

    /// This address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Self {
        VAddr(self.0 + bytes)
    }

    /// True if word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        (self.0 & !V_SHADOW_BIT).is_multiple_of(WORD_BYTES)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// Page permissions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageFlags {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
}

impl PageFlags {
    /// Read-only mapping.
    pub const RO: PageFlags = PageFlags {
        read: true,
        write: false,
    };
    /// Read-write mapping.
    pub const RW: PageFlags = PageFlags {
        read: true,
        write: true,
    };

    /// Does this permission set allow `kind`?
    pub fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
        }
    }
}

/// Load or store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A page-table entry: the physical page base plus permissions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pte {
    /// Page-aligned physical base address.
    pub base: PAddr,
    /// Permissions.
    pub flags: PageFlags,
}

/// Translation faults (delivered to the simulated OS).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// No mapping for the page.
    Unmapped(VAddr),
    /// Mapping exists but forbids the access.
    Protection(VAddr, AccessKind),
    /// The address is not word-aligned (the HIB transfers whole words).
    Misaligned(VAddr),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Unmapped(va) => write!(f, "page fault: {va} unmapped"),
            Fault::Protection(va, k) => write!(f, "protection fault: {k} of {va}"),
            Fault::Misaligned(va) => write!(f, "alignment fault at {va}"),
        }
    }
}

impl std::error::Error for Fault {}

/// One process's page table. The model runs one parallel process per
/// workstation, so node and address space coincide.
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    entries: HashMap<u64, Pte>,
}

impl PageTable {
    /// An empty table.
    pub fn new() -> Self {
        PageTable {
            entries: HashMap::new(),
        }
    }

    /// Maps virtual page `vpage` to the physical page starting at `base`.
    /// Remapping an existing page replaces it (used when the OS replicates
    /// a remote page locally).
    ///
    /// # Panics
    ///
    /// Panics if `base`'s offset is not page-aligned.
    pub fn map(&mut self, vpage: u64, base: PAddr, flags: PageFlags) {
        assert_eq!(
            base.bits() & (PAGE_BYTES - 1),
            0,
            "physical base must be page-aligned"
        );
        self.entries.insert(vpage, Pte { base, flags });
    }

    /// Removes a mapping (page invalidation); returns the old entry.
    pub fn unmap(&mut self, vpage: u64) -> Option<Pte> {
        self.entries.remove(&vpage)
    }

    /// Looks up a virtual page.
    pub fn lookup(&self, vpage: u64) -> Option<Pte> {
        self.entries.get(&vpage).copied()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The translation unit in front of the simulated processor.
///
/// Shadow virtual addresses translate through the *same* page-table entry
/// as their normal twin — protection is thereby enforced by the TLB exactly
/// as §2.2.4 describes — and yield the shadow physical address, which the
/// HIB interprets as "here is a physical argument for a special operation".
/// Shadow accesses are stores by definition, so they require write
/// permission.
#[derive(Clone, Debug, Default)]
pub struct Mmu {
    table: PageTable,
}

impl Mmu {
    /// An MMU with an empty page table.
    pub fn new() -> Self {
        Mmu {
            table: PageTable::new(),
        }
    }

    /// The backing page table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable access to the page table (OS mapping operations).
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }

    /// Translates `va` for an access of kind `kind`.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] the real hardware would raise: misalignment,
    /// missing mapping, or a permission violation.
    pub fn translate(&self, va: VAddr, kind: AccessKind) -> Result<PAddr, Fault> {
        if !va.is_word_aligned() {
            return Err(Fault::Misaligned(va));
        }
        let pte = self.table.lookup(va.vpage()).ok_or(Fault::Unmapped(va))?;
        if va.is_shadow() && !pte.flags.allows(AccessKind::Write) {
            // Passing a physical address to the HIB is only legal for pages
            // the process could store to.
            return Err(Fault::Protection(va, AccessKind::Write));
        }
        if !pte.flags.allows(kind) {
            return Err(Fault::Protection(va, kind));
        }
        let pa = pte.base.add(va.in_page());
        Ok(if va.is_shadow() { pa.shadow() } else { pa })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paddr::Decoded;
    use tg_wire::{GOffset, NodeId};

    fn mmu_with(vpage: u64, base: PAddr, flags: PageFlags) -> Mmu {
        let mut mmu = Mmu::new();
        mmu.table_mut().map(vpage, base, flags);
        mmu
    }

    #[test]
    fn translate_private_page() {
        let mmu = mmu_with(4, PAddr::private(3 * PAGE_BYTES), PageFlags::RW);
        let va = VAddr::new(4 * PAGE_BYTES + 0x20);
        let pa = mmu.translate(va, AccessKind::Read).unwrap();
        assert_eq!(
            pa.decode(),
            Decoded::Private {
                off: 3 * PAGE_BYTES + 0x20
            }
        );
    }

    #[test]
    fn translate_remote_window() {
        let base = PAddr::remote(NodeId::new(2), GOffset::new(PAGE_BYTES));
        let mmu = mmu_with(10, base, PageFlags::RW);
        let pa = mmu
            .translate(VAddr::new(10 * PAGE_BYTES + 8), AccessKind::Write)
            .unwrap();
        assert_eq!(
            pa.decode(),
            Decoded::Remote {
                node: NodeId::new(2),
                off: GOffset::new(PAGE_BYTES + 8)
            }
        );
    }

    #[test]
    fn unmapped_faults() {
        let mmu = Mmu::new();
        let va = VAddr::new(0x8000);
        assert_eq!(
            mmu.translate(va, AccessKind::Read),
            Err(Fault::Unmapped(va))
        );
    }

    #[test]
    fn protection_enforced() {
        let mmu = mmu_with(1, PAddr::private(0), PageFlags::RO);
        let va = VAddr::new(PAGE_BYTES);
        assert!(mmu.translate(va, AccessKind::Read).is_ok());
        assert_eq!(
            mmu.translate(va, AccessKind::Write),
            Err(Fault::Protection(va, AccessKind::Write))
        );
    }

    #[test]
    fn misaligned_faults() {
        let mmu = mmu_with(1, PAddr::private(0), PageFlags::RW);
        let va = VAddr::new(PAGE_BYTES + 1);
        assert_eq!(
            mmu.translate(va, AccessKind::Read),
            Err(Fault::Misaligned(va))
        );
    }

    #[test]
    fn shadow_translation_sets_shadow_pa() {
        let base = PAddr::remote(NodeId::new(1), GOffset::new(0));
        let mmu = mmu_with(6, base, PageFlags::RW);
        let va = VAddr::new(6 * PAGE_BYTES + 16).shadow();
        let pa = mmu.translate(va, AccessKind::Write).unwrap();
        assert!(pa.is_shadow());
        assert_eq!(
            pa.unshadow().decode(),
            Decoded::Remote {
                node: NodeId::new(1),
                off: GOffset::new(16)
            }
        );
    }

    #[test]
    fn shadow_requires_write_permission() {
        // A malicious user cannot leak physical addresses of read-only
        // pages to the HIB.
        let mmu = mmu_with(6, PAddr::private(0), PageFlags::RO);
        let va = VAddr::new(6 * PAGE_BYTES).shadow();
        assert_eq!(
            mmu.translate(va, AccessKind::Write),
            Err(Fault::Protection(va, AccessKind::Write))
        );
    }

    #[test]
    fn remap_replaces() {
        let mut mmu = mmu_with(
            3,
            PAddr::remote(NodeId::new(5), GOffset::new(0)),
            PageFlags::RW,
        );
        // OS replicates the page locally: same vpage now points at local
        // shared memory.
        mmu.table_mut()
            .map(3, PAddr::local_shared(GOffset::new(0)), PageFlags::RW);
        let pa = mmu
            .translate(VAddr::new(3 * PAGE_BYTES), AccessKind::Read)
            .unwrap();
        assert_eq!(
            pa.decode(),
            Decoded::LocalShared {
                off: GOffset::new(0)
            }
        );
        assert_eq!(mmu.table().len(), 1);
    }

    #[test]
    fn unmap_then_fault() {
        let mut mmu = mmu_with(3, PAddr::private(0), PageFlags::RW);
        assert!(mmu.table_mut().unmap(3).is_some());
        assert!(mmu.table_mut().unmap(3).is_none());
        let va = VAddr::new(3 * PAGE_BYTES);
        assert_eq!(
            mmu.translate(va, AccessKind::Read),
            Err(Fault::Unmapped(va))
        );
    }
}
