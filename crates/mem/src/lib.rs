//! # tg-mem — the workstation memory system
//!
//! Models what the Telegraphos HIB sees on the host side: a per-node
//! physical address space in which remote shared pages appear as I/O-bus
//! windows ("the highest order bits of each physical address denote the
//! node identification", §2.2.1), local shared pages live in the HIB's
//! memory (Telegraphos I) or a carve-out of main memory (Telegraphos II),
//! and every address has a *shadow* twin differing only in the top bit —
//! the Telegraphos II mechanism for passing physical addresses to the HIB
//! from user level (§2.2.4).
//!
//! The crate provides:
//! * [`PAddr`] — the physical address encoding and its decoder;
//! * [`PhysMem`] — a sparse word-addressed physical memory;
//! * [`PageTable`]/[`Mmu`] — virtual-to-physical translation with
//!   permissions, page faults, and shadow-address handling.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod paddr;
mod pagetable;
mod phys;

pub use paddr::{Decoded, PAddr};
pub use pagetable::{AccessKind, Fault, Mmu, PageFlags, PageTable, Pte, VAddr};
pub use phys::PhysMem;
