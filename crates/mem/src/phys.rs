//! Sparse word-addressed physical memory.

use std::collections::HashMap;

use tg_wire::{GOffset, PAGE_WORDS, WORD_BYTES};

/// A sparse 64-bit-word memory, used both for each node's private DRAM and
/// for its exported shared segment. Unwritten words read as zero, like
/// freshly-mapped pages.
///
/// # Example
///
/// ```
/// use tg_mem::PhysMem;
/// use tg_wire::GOffset;
///
/// let mut m = PhysMem::new();
/// assert_eq!(m.read(GOffset::new(0)), 0);
/// m.write(GOffset::new(16), 99);
/// assert_eq!(m.read(GOffset::new(16)), 99);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhysMem {
    words: HashMap<u64, u64>,
}

impl PhysMem {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        PhysMem {
            words: HashMap::new(),
        }
    }

    /// Reads the word at a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not word-aligned — alignment is enforced at the
    /// MMU; reaching here unaligned is a model bug.
    pub fn read(&self, off: GOffset) -> u64 {
        assert!(off.is_word_aligned(), "unaligned read at {off}");
        self.words.get(&off.word_index()).copied().unwrap_or(0)
    }

    /// Writes the word at a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not word-aligned.
    pub fn write(&mut self, off: GOffset, val: u64) {
        assert!(off.is_word_aligned(), "unaligned write at {off}");
        if val == 0 {
            self.words.remove(&off.word_index());
        } else {
            self.words.insert(off.word_index(), val);
        }
    }

    /// Reads `words` consecutive words starting at `off`.
    pub fn read_block(&self, off: GOffset, words: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.read_block_into(off, words, &mut out);
        out
    }

    /// Reads `words` consecutive words starting at `off`, appending to
    /// `out` — lets callers reuse burst buffers instead of allocating.
    pub fn read_block_into(&self, off: GOffset, words: u64, out: &mut Vec<u64>) {
        out.extend((0..words).map(|i| self.read(off.add(i * WORD_BYTES))));
    }

    /// Writes consecutive words starting at `off`.
    pub fn write_block(&mut self, off: GOffset, vals: &[u64]) {
        for (i, &v) in vals.iter().enumerate() {
            self.write(off.add(i as u64 * WORD_BYTES), v);
        }
    }

    /// Snapshot of one whole page (1024 words), for page transfers and for
    /// the coherence tests' convergence checks.
    pub fn read_page(&self, page: tg_wire::PageNum) -> Vec<u64> {
        self.read_block(page.base(), PAGE_WORDS)
    }

    /// Overwrites one whole page.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is not exactly a page of words.
    pub fn write_page(&mut self, page: tg_wire::PageNum, vals: &[u64]) {
        assert_eq!(vals.len() as u64, PAGE_WORDS, "page image has 1024 words");
        self.write_block(page.base(), vals);
    }

    /// Number of non-zero words stored (footprint diagnostics).
    pub fn resident_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::PageNum;

    #[test]
    fn unwritten_reads_zero() {
        let m = PhysMem::new();
        assert_eq!(m.read(GOffset::new(8)), 0);
        assert_eq!(m.resident_words(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = PhysMem::new();
        m.write(GOffset::new(0), u64::MAX);
        m.write(GOffset::new(8), 1);
        assert_eq!(m.read(GOffset::new(0)), u64::MAX);
        assert_eq!(m.read(GOffset::new(8)), 1);
        assert_eq!(m.resident_words(), 2);
    }

    #[test]
    fn writing_zero_reclaims() {
        let mut m = PhysMem::new();
        m.write(GOffset::new(0), 5);
        m.write(GOffset::new(0), 0);
        assert_eq!(m.resident_words(), 0);
        assert_eq!(m.read(GOffset::new(0)), 0);
    }

    #[test]
    fn blocks_round_trip() {
        let mut m = PhysMem::new();
        m.write_block(GOffset::new(64), &[1, 2, 3]);
        assert_eq!(m.read_block(GOffset::new(64), 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn pages_round_trip() {
        let mut m = PhysMem::new();
        let mut img = vec![0u64; PAGE_WORDS as usize];
        img[0] = 7;
        img[1023] = 9;
        m.write_page(PageNum::new(2), &img);
        assert_eq!(m.read_page(PageNum::new(2)), img);
        // Neighboring pages untouched.
        assert_eq!(m.read(PageNum::new(1).base()), 0);
        assert_eq!(m.read(PageNum::new(3).base()), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_is_a_bug() {
        let m = PhysMem::new();
        let _ = m.read(GOffset::new(3));
    }

    #[test]
    #[should_panic(expected = "1024 words")]
    fn short_page_image_rejected() {
        let mut m = PhysMem::new();
        m.write_page(PageNum::new(0), &[1, 2, 3]);
    }
}
