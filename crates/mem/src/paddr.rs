//! The per-node physical address encoding.

use std::fmt;

use tg_wire::{GOffset, NodeId};

/// Bit 63: the shadow flag (paper §2.2.4 — "An address differs from its
/// shadow only in the highest bit").
const SHADOW_BIT: u64 = 1 << 63;
/// Bits 61..=59 select the region.
const REGION_SHIFT: u32 = 59;
const REGION_MASK: u64 = 0b111 << REGION_SHIFT;
/// For remote windows, bits 47..=32 carry the destination node id.
const NODE_SHIFT: u32 = 32;
const NODE_MASK: u64 = 0xFFFF << NODE_SHIFT;
/// Low 32 bits carry the offset (private offset, segment offset or HIB
/// register number).
const OFF_MASK: u64 = 0xFFFF_FFFF;

const REGION_PRIVATE: u64 = 0;
const REGION_LOCAL_SHARED: u64 = 1;
const REGION_REMOTE: u64 = 2;
const REGION_HIB_REG: u64 = 3;

/// A physical address in one workstation's address map.
///
/// Layout (motivated by §2.2.1 of the paper):
///
/// ```text
/// bit 63      : shadow flag
/// bits 61..59 : region  (0 private DRAM, 1 local shared, 2 remote window,
///                        3 HIB registers)
/// bits 47..32 : node id (remote windows only)
/// bits 31..0  : offset
/// ```
///
/// # Example
///
/// ```
/// use tg_mem::{Decoded, PAddr};
/// use tg_wire::{GOffset, NodeId};
///
/// let pa = PAddr::remote(NodeId::new(3), GOffset::new(0x100));
/// assert_eq!(
///     pa.decode(),
///     Decoded::Remote { node: NodeId::new(3), off: GOffset::new(0x100) }
/// );
/// assert!(!pa.is_shadow());
/// assert!(pa.shadow().is_shadow());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PAddr(u64);

/// A decoded physical address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decoded {
    /// Private main memory; Telegraphos never sees these accesses.
    Private {
        /// Byte offset in private DRAM.
        off: u64,
    },
    /// The local shared segment (HIB SRAM in Telegraphos I, a main-memory
    /// carve-out in Telegraphos II).
    LocalShared {
        /// Offset in this node's exported segment.
        off: GOffset,
    },
    /// A window onto another node's shared segment; accesses become
    /// network transactions.
    Remote {
        /// The home node.
        node: NodeId,
        /// Offset in the home node's segment.
        off: GOffset,
    },
    /// A HIB control register (special-operation launch, counters, …).
    HibReg {
        /// Register number.
        reg: u64,
    },
}

impl PAddr {
    /// Raw bits.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs from raw bits (e.g. out of a page-table entry).
    pub const fn from_bits(bits: u64) -> Self {
        PAddr(bits)
    }

    /// A private main-memory address.
    pub const fn private(off: u64) -> Self {
        PAddr((REGION_PRIVATE << REGION_SHIFT) | (off & OFF_MASK))
    }

    /// An address in the local shared segment.
    pub const fn local_shared(off: GOffset) -> Self {
        PAddr((REGION_LOCAL_SHARED << REGION_SHIFT) | (off.bytes() & OFF_MASK))
    }

    /// A window address for `off` within `node`'s shared segment.
    pub const fn remote(node: NodeId, off: GOffset) -> Self {
        PAddr(
            (REGION_REMOTE << REGION_SHIFT)
                | ((node.raw() as u64) << NODE_SHIFT)
                | (off.bytes() & OFF_MASK),
        )
    }

    /// A HIB control register.
    pub const fn hib_reg(reg: u64) -> Self {
        PAddr((REGION_HIB_REG << REGION_SHIFT) | (reg & OFF_MASK))
    }

    /// The shadow twin of this address (top bit set).
    pub const fn shadow(self) -> Self {
        PAddr(self.0 | SHADOW_BIT)
    }

    /// This address with the shadow bit stripped.
    pub const fn unshadow(self) -> Self {
        PAddr(self.0 & !SHADOW_BIT)
    }

    /// True if the shadow bit is set.
    pub const fn is_shadow(self) -> bool {
        self.0 & SHADOW_BIT != 0
    }

    /// Classifies the (unshadowed) address.
    pub fn decode(self) -> Decoded {
        let bits = self.0 & !SHADOW_BIT;
        let off = bits & OFF_MASK;
        match (bits & REGION_MASK) >> REGION_SHIFT {
            REGION_PRIVATE => Decoded::Private { off },
            REGION_LOCAL_SHARED => Decoded::LocalShared {
                off: GOffset::new(off),
            },
            REGION_REMOTE => Decoded::Remote {
                node: NodeId::new(((bits & NODE_MASK) >> NODE_SHIFT) as u16),
                off: GOffset::new(off),
            },
            REGION_HIB_REG => Decoded::HibReg { reg: off },
            other => unreachable!("region {other} cannot be encoded"),
        }
    }

    /// Adds a byte displacement (stays within the region's offset field).
    pub const fn add(self, bytes: u64) -> Self {
        PAddr((self.0 & !OFF_MASK) | ((self.0 & OFF_MASK).wrapping_add(bytes) & OFF_MASK))
    }

    /// True if the offset field is word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        (self.0 & OFF_MASK).is_multiple_of(8)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shadow = if self.is_shadow() { "~" } else { "" };
        match self.decode() {
            Decoded::Private { off } => write!(f, "{shadow}priv:{off:#x}"),
            Decoded::LocalShared { off } => write!(f, "{shadow}shm{off}"),
            Decoded::Remote { node, off } => write!(f, "{shadow}{node}{off}"),
            Decoded::HibReg { reg } => write!(f, "{shadow}hib[{reg:#x}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_round_trip() {
        assert_eq!(
            PAddr::private(0x1234).decode(),
            Decoded::Private { off: 0x1234 }
        );
        assert_eq!(
            PAddr::local_shared(GOffset::new(0x2000)).decode(),
            Decoded::LocalShared {
                off: GOffset::new(0x2000)
            }
        );
        assert_eq!(
            PAddr::remote(NodeId::new(7), GOffset::new(0x88)).decode(),
            Decoded::Remote {
                node: NodeId::new(7),
                off: GOffset::new(0x88)
            }
        );
        assert_eq!(PAddr::hib_reg(4).decode(), Decoded::HibReg { reg: 4 });
    }

    #[test]
    fn shadow_differs_only_in_top_bit() {
        let pa = PAddr::remote(NodeId::new(1), GOffset::new(64));
        let sh = pa.shadow();
        assert_eq!(pa.bits() ^ sh.bits(), 1 << 63);
        assert_eq!(sh.unshadow(), pa);
        assert_eq!(sh.decode(), pa.decode(), "decode ignores the shadow bit");
    }

    #[test]
    fn distinct_regions_do_not_collide() {
        let a = PAddr::private(0x40);
        let b = PAddr::local_shared(GOffset::new(0x40));
        let c = PAddr::remote(NodeId::new(0), GOffset::new(0x40));
        let d = PAddr::hib_reg(0x40);
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            for (j, y) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y);
                }
            }
        }
    }

    #[test]
    fn add_moves_offset_only() {
        let pa = PAddr::remote(NodeId::new(3), GOffset::new(8));
        let pb = pa.add(8);
        assert_eq!(
            pb.decode(),
            Decoded::Remote {
                node: NodeId::new(3),
                off: GOffset::new(16)
            }
        );
    }

    #[test]
    fn alignment_check() {
        assert!(PAddr::private(16).is_word_aligned());
        assert!(!PAddr::private(12).is_word_aligned());
    }

    #[test]
    fn display_is_informative() {
        let pa = PAddr::remote(NodeId::new(2), GOffset::new(0x10)).shadow();
        assert_eq!(pa.to_string(), "~n2+0x10");
    }
}
