//! The Virtual Shared Memory baseline (§2.1's "traditional systems").
//!
//! A Li–Hudak-style single-writer, multiple-reader invalidate protocol with
//! a fixed manager per page (the page's home node): read faults fetch a
//! copy from the current owner; write faults invalidate every copy and
//! migrate ownership. All of it runs in (simulated) OS software — page
//! faults, traps, whole-page transfers — which is precisely the overhead
//! Telegraphos hardware eliminates. Experiment E6 races this protocol
//! against the owner-serialized update hardware.
//!
//! The module is a pure state machine: the node feeds it faults and
//! messages and executes the returned [`VsmEffect`]s (sends, mappings,
//! page-data writes), charging the OS costs as it does.

use std::collections::{BTreeSet, HashMap, VecDeque};

use tg_wire::{NodeId, PageNum, WireMsg};

/// OS-control message kinds used by the protocol.
pub mod kind {
    /// Requester → manager: read fault on `a = gpage` by `b = node`.
    pub const READ_REQ: u16 = 0x10;
    /// Requester → manager: write fault.
    pub const WRITE_REQ: u16 = 0x11;
    /// Manager → owner: send the page to `b` and downgrade to read.
    pub const FWD_READ: u16 = 0x12;
    /// Manager → owner: send the page to `b` and invalidate yourself.
    pub const FWD_WRITE: u16 = 0x13;
    /// Manager → holder: invalidate `a = gpage`.
    pub const INV: u16 = 0x14;
    /// Holder → manager: invalidation done (`b = holder`).
    pub const INV_ACK: u16 = 0x15;
    /// Manager → requester: your (still valid) copy may be upgraded.
    pub const GRANT_WRITE: u16 = 0x16;
    /// Requester → manager: read mapping installed (`b = requester`).
    pub const DONE_READ: u16 = 0x17;
    /// Requester → manager: write mapping installed (`b = requester`).
    pub const DONE_WRITE: u16 = 0x18;
}

/// Tag namespace for VSM page-data streams.
pub const VSM_TAG_BASE: u32 = 0x8000_0000;

/// Access mode of a VSM page at one node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VsmMode {
    /// Not mapped; any access faults.
    Invalid,
    /// Mapped read-only.
    Read,
    /// Mapped read-write (this node is the owner).
    Write,
}

/// What the node must do on behalf of the protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VsmEffect {
    /// Send a protocol message (possibly to ourselves — loop it back).
    Send {
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: WireMsg,
    },
    /// Stream our copy of the page (in `frame`) to `dst` as `PageData`
    /// with the VSM tag for `gpage`.
    SendPage {
        /// Destination node.
        dst: NodeId,
        /// Global page id.
        gpage: u64,
        /// Local frame holding the data.
        frame: PageNum,
    },
    /// Map the page read-only at this node (charge map cost).
    MapRead {
        /// Virtual page number.
        vpage: u64,
        /// Local frame.
        frame: PageNum,
    },
    /// Map the page read-write.
    MapWrite {
        /// Virtual page number.
        vpage: u64,
        /// Local frame.
        frame: PageNum,
    },
    /// Remove the mapping (invalidation).
    Unmap {
        /// Virtual page number.
        vpage: u64,
    },
    /// Write an arriving burst of page data into the local frame.
    WriteBurst {
        /// Local frame.
        frame: PageNum,
        /// Word index within the page.
        index: u32,
        /// The words.
        vals: tg_wire::Payload,
    },
    /// The stalled fault on `vpage` is resolved; retry the access.
    ResumeFault {
        /// Virtual page number.
        vpage: u64,
    },
    /// The in-flight fault on `vpage` can never complete: the page's home
    /// (its manager) was declared dead by the failure detector. The node
    /// must release the faulted thread with a structured failure instead
    /// of letting it wait forever.
    FailFault {
        /// Virtual page number.
        vpage: u64,
        /// The dead manager the fault was bound for.
        peer: NodeId,
    },
}

#[derive(Clone, Copy, Debug)]
struct PageMeta {
    gpage: u64,
    home: NodeId,
    frame: PageNum,
}

#[derive(Clone, Copy, Debug)]
struct PageState {
    meta: PageMeta,
    mode: VsmMode,
    pending_write_fault: bool,
    faulted: bool,
}

#[derive(Clone, Debug)]
struct Pending {
    requester: NodeId,
    write: bool,
    /// Holders whose invalidation acks are still outstanding. A set (not
    /// a count) so crash recovery can strike a dead holder from the wait
    /// list without miscounting a late or lost ack.
    inv_waiting: BTreeSet<NodeId>,
    /// True when the page image must travel from the owner (the requester
    /// holds no current copy).
    needs_data: bool,
}

#[derive(Clone, Debug)]
struct Dir {
    owner: NodeId,
    copyset: BTreeSet<NodeId>,
    busy: Option<Pending>,
    queue: VecDeque<(NodeId, bool)>,
}

/// Per-node VSM state: page table of managed pages plus, at home nodes,
/// the manager directory.
#[derive(Debug)]
pub struct VsmNode {
    me: NodeId,
    pages: HashMap<u64, PageState>,
    by_gpage: HashMap<u64, u64>,
    dirs: HashMap<u64, Dir>,
    /// Peers currently convicted dead by the failure detector. Consulted
    /// when an invalidation round finishes: an op whose requester died
    /// mid-round is abandoned instead of granted.
    dead: BTreeSet<NodeId>,
}

impl VsmNode {
    /// VSM state for node `me`.
    pub fn new(me: NodeId) -> Self {
        VsmNode {
            me,
            pages: HashMap::new(),
            by_gpage: HashMap::new(),
            dirs: HashMap::new(),
            dead: BTreeSet::new(),
        }
    }

    /// Registers a managed page at this node. The home node starts as the
    /// owner with a writable mapping; everyone else starts invalid.
    pub fn register(&mut self, gpage: u64, vpage: u64, home: NodeId, frame: PageNum) {
        let meta = PageMeta { gpage, home, frame };
        let mode = if home == self.me {
            VsmMode::Write
        } else {
            VsmMode::Invalid
        };
        self.pages.insert(
            vpage,
            PageState {
                meta,
                mode,
                pending_write_fault: false,
                faulted: false,
            },
        );
        self.by_gpage.insert(gpage, vpage);
        if home == self.me {
            self.dirs.insert(
                gpage,
                Dir {
                    owner: home,
                    copyset: BTreeSet::from([home]),
                    busy: None,
                    queue: VecDeque::new(),
                },
            );
        }
    }

    /// True if `vpage` is VSM-managed here.
    pub fn manages(&self, vpage: u64) -> bool {
        self.pages.contains_key(&vpage)
    }

    /// Current mode of a managed page.
    ///
    /// # Panics
    ///
    /// Panics if the page is not managed.
    pub fn mode(&self, vpage: u64) -> VsmMode {
        self.pages[&vpage].mode
    }

    /// The local frame backing a managed page.
    pub fn frame(&self, vpage: u64) -> PageNum {
        self.pages[&vpage].meta.frame
    }

    /// Reports a fault on a managed page; returns the protocol actions.
    ///
    /// # Panics
    ///
    /// Panics if the page is not managed or a fault is already pending on
    /// it (the single CPU cannot fault twice).
    pub fn on_fault(&mut self, vpage: u64, write: bool) -> Vec<VsmEffect> {
        let page = self.pages.get_mut(&vpage).expect("managed page");
        assert!(!page.faulted, "double fault on {vpage:#x}");
        page.faulted = true;
        page.pending_write_fault = write;
        let k = if write {
            kind::WRITE_REQ
        } else {
            kind::READ_REQ
        };
        vec![VsmEffect::Send {
            dst: page.meta.home,
            msg: WireMsg::OsCtl {
                kind: k,
                a: page.meta.gpage,
                b: u64::from(self.me.raw()),
            },
        }]
    }

    /// Handles a protocol message (OsCtl with a VSM kind, or PageData with
    /// a VSM tag).
    pub fn on_msg(&mut self, _src: NodeId, msg: &WireMsg) -> Vec<VsmEffect> {
        match *msg {
            WireMsg::OsCtl { kind: k, a, b } => self.on_ctl(k, a, NodeId::new(b as u16)),
            WireMsg::PageData {
                tag,
                index,
                ref vals,
                last,
            } => self.on_page_data(tag, index, vals.clone(), last),
            ref other => unreachable!("not a VSM message: {other:?}"),
        }
    }

    /// True if this message belongs to the VSM protocol.
    pub fn is_vsm_msg(msg: &WireMsg) -> bool {
        match *msg {
            WireMsg::OsCtl { kind: k, .. } => (kind::READ_REQ..=kind::DONE_WRITE).contains(&k),
            WireMsg::PageData { tag, .. } => tag & VSM_TAG_BASE != 0,
            _ => false,
        }
    }

    fn on_ctl(&mut self, k: u16, gpage: u64, who: NodeId) -> Vec<VsmEffect> {
        match k {
            kind::READ_REQ => self.mgr_request(gpage, who, false),
            kind::WRITE_REQ => self.mgr_request(gpage, who, true),
            kind::FWD_READ => {
                // We are the owner: stream the page and downgrade.
                let vpage = self.by_gpage[&gpage];
                let page = self.pages.get_mut(&vpage).expect("owner state");
                let frame = page.meta.frame;
                let mut fx = Vec::new();
                if page.mode == VsmMode::Write {
                    page.mode = VsmMode::Read;
                    fx.push(VsmEffect::MapRead { vpage, frame });
                }
                fx.push(VsmEffect::SendPage {
                    dst: who,
                    gpage,
                    frame,
                });
                fx
            }
            kind::FWD_WRITE => {
                let vpage = self.by_gpage[&gpage];
                let page = self.pages.get_mut(&vpage).expect("owner state");
                let frame = page.meta.frame;
                let mut fx = vec![VsmEffect::SendPage {
                    dst: who,
                    gpage,
                    frame,
                }];
                // After crash failover the home can be asked to serve from
                // a frame it never had mapped — only unmap a live mapping.
                if page.mode != VsmMode::Invalid {
                    page.mode = VsmMode::Invalid;
                    fx.push(VsmEffect::Unmap { vpage });
                }
                fx
            }
            kind::INV => {
                let vpage = self.by_gpage[&gpage];
                let page = self.pages.get_mut(&vpage).expect("holder state");
                let home = page.meta.home;
                let mut fx = Vec::new();
                if page.mode != VsmMode::Invalid {
                    page.mode = VsmMode::Invalid;
                    fx.push(VsmEffect::Unmap { vpage });
                }
                fx.push(VsmEffect::Send {
                    dst: home,
                    msg: WireMsg::OsCtl {
                        kind: kind::INV_ACK,
                        a: gpage,
                        b: u64::from(self.me.raw()),
                    },
                });
                fx
            }
            kind::INV_ACK => self.mgr_inv_ack(gpage, who),
            kind::GRANT_WRITE => {
                let vpage = self.by_gpage[&gpage];
                self.complete_fault(vpage)
            }
            kind::DONE_READ => self.mgr_done(gpage, who, false),
            kind::DONE_WRITE => self.mgr_done(gpage, who, true),
            other => unreachable!("unknown VSM kind {other:#x}"),
        }
    }

    fn on_page_data(
        &mut self,
        tag: u32,
        index: u32,
        vals: tg_wire::Payload,
        last: bool,
    ) -> Vec<VsmEffect> {
        let gpage = u64::from(tag & !VSM_TAG_BASE);
        let vpage = self.by_gpage[&gpage];
        let frame = self.pages[&vpage].meta.frame;
        let mut fx = vec![VsmEffect::WriteBurst { frame, index, vals }];
        if last {
            fx.extend(self.complete_fault(vpage));
        }
        fx
    }

    /// Installs the mapping for a resolved fault and notifies the manager.
    fn complete_fault(&mut self, vpage: u64) -> Vec<VsmEffect> {
        let page = self.pages.get_mut(&vpage).expect("faulted page");
        if !page.faulted {
            // A grant or page stream for a fault that crash cleanup
            // already failed (the manager was convicted dead while the
            // data was in flight): stale, ignore.
            return Vec::new();
        }
        page.faulted = false;
        let frame = page.meta.frame;
        let (map, done_kind) = if page.pending_write_fault {
            page.mode = VsmMode::Write;
            (VsmEffect::MapWrite { vpage, frame }, kind::DONE_WRITE)
        } else {
            page.mode = VsmMode::Read;
            (VsmEffect::MapRead { vpage, frame }, kind::DONE_READ)
        };
        vec![
            map,
            VsmEffect::ResumeFault { vpage },
            VsmEffect::Send {
                dst: page.meta.home,
                msg: WireMsg::OsCtl {
                    kind: done_kind,
                    a: page.meta.gpage,
                    b: u64::from(self.me.raw()),
                },
            },
        ]
    }

    // ---------------- manager side ----------------

    fn mgr_request(&mut self, gpage: u64, requester: NodeId, write: bool) -> Vec<VsmEffect> {
        let dir = self.dirs.get_mut(&gpage).expect("we are the manager");
        if dir.busy.is_some() {
            dir.queue.push_back((requester, write));
            return Vec::new();
        }
        self.mgr_start(gpage, requester, write)
    }

    fn mgr_start(&mut self, gpage: u64, requester: NodeId, write: bool) -> Vec<VsmEffect> {
        let me = self.me;
        let dir = self.dirs.get_mut(&gpage).expect("manager directory");
        let owner = dir.owner;
        let had_copy = dir.copyset.contains(&requester);
        let mut fx = Vec::new();
        if write {
            // The owner is invalidated through FWD_WRITE when it must also
            // ship the data; otherwise it gets a plain INV like any holder.
            let needs_data = !had_copy && owner != requester;
            let inv_targets: Vec<NodeId> = dir
                .copyset
                .iter()
                .copied()
                .filter(|&n| n != requester && !(needs_data && n == owner))
                .collect();
            dir.busy = Some(Pending {
                requester,
                write,
                inv_waiting: inv_targets.iter().copied().collect(),
                needs_data,
            });
            for t in inv_targets {
                fx.push(VsmEffect::Send {
                    dst: t,
                    msg: WireMsg::OsCtl {
                        kind: kind::INV,
                        a: gpage,
                        b: 0,
                    },
                });
            }
            if fx.is_empty() {
                // No invalidations outstanding: move straight to the data /
                // grant phase.
                fx.extend(self.mgr_data_phase(gpage));
            }
        } else {
            dir.busy = Some(Pending {
                requester,
                write,
                inv_waiting: BTreeSet::new(),
                needs_data: true,
            });
            let _ = (me, had_copy);
            fx.push(VsmEffect::Send {
                dst: owner,
                msg: WireMsg::OsCtl {
                    kind: kind::FWD_READ,
                    a: gpage,
                    b: u64::from(requester.raw()),
                },
            });
        }
        fx
    }

    fn mgr_inv_ack(&mut self, gpage: u64, who: NodeId) -> Vec<VsmEffect> {
        let dir = self.dirs.get_mut(&gpage).expect("manager directory");
        let Some(pending) = dir.busy.as_mut() else {
            // The op this ack answers was abandoned by crash cleanup.
            return Vec::new();
        };
        if !pending.inv_waiting.remove(&who) {
            // Stale or duplicate ack (idempotent retransmission).
            return Vec::new();
        }
        if pending.inv_waiting.is_empty() {
            self.mgr_after_invs(gpage)
        } else {
            Vec::new()
        }
    }

    /// The invalidation round just completed: grant the op — unless the
    /// requester was convicted dead while we were collecting acks, in
    /// which case abandon it and serve the next queued request.
    fn mgr_after_invs(&mut self, gpage: u64) -> Vec<VsmEffect> {
        let requester = self.dirs[&gpage]
            .busy
            .as_ref()
            .expect("pending op")
            .requester;
        if self.dead.contains(&requester) {
            let dir = self.dirs.get_mut(&gpage).expect("manager directory");
            dir.busy = None;
            if let Some((next, w)) = dir.queue.pop_front() {
                return self.mgr_start(gpage, next, w);
            }
            return Vec::new();
        }
        self.mgr_data_phase(gpage)
    }

    /// Write-fault phase two: hand the data (or an upgrade grant) to the
    /// requester.
    fn mgr_data_phase(&mut self, gpage: u64) -> Vec<VsmEffect> {
        let (requester, owner, needs_data) = {
            let dir = &self.dirs[&gpage];
            let pending = dir.busy.as_ref().expect("pending op");
            (pending.requester, dir.owner, pending.needs_data)
        };
        if needs_data {
            if owner == self.me && requester == self.me {
                // Crash failover re-homed ownership to us while our own
                // fault was in flight: the recovered image is already in
                // our frame — complete locally instead of streaming a
                // page to ourselves.
                let vpage = self.by_gpage[&gpage];
                return self.complete_fault(vpage);
            }
            vec![VsmEffect::Send {
                dst: owner,
                msg: WireMsg::OsCtl {
                    kind: kind::FWD_WRITE,
                    a: gpage,
                    b: u64::from(requester.raw()),
                },
            }]
        } else {
            // Upgrade in place: the requester's copy is current.
            vec![VsmEffect::Send {
                dst: requester,
                msg: WireMsg::OsCtl {
                    kind: kind::GRANT_WRITE,
                    a: gpage,
                    b: 0,
                },
            }]
        }
    }

    fn mgr_done(&mut self, gpage: u64, requester: NodeId, write: bool) -> Vec<VsmEffect> {
        let dir = self.dirs.get_mut(&gpage).expect("manager directory");
        let Some(pending) = dir.busy.take() else {
            // A DONE racing crash-driven cleanup (the requester completed
            // its fault, then was convicted dead): nothing left to close.
            return Vec::new();
        };
        debug_assert_eq!(pending.requester, requester);
        debug_assert_eq!(pending.write, write);
        if write {
            dir.owner = requester;
            dir.copyset = BTreeSet::from([requester]);
        } else {
            dir.copyset.insert(requester);
        }
        if let Some((next, w)) = dir.queue.pop_front() {
            self.mgr_start(gpage, next, w)
        } else {
            Vec::new()
        }
    }

    // ---------------- crash-stop fault domain ----------------

    /// The home (manager) node of a managed page.
    pub fn home(&self, vpage: u64) -> NodeId {
        self.pages[&vpage].meta.home
    }

    /// Fails a fault *before* it is issued: the page's home is already
    /// convicted dead, so sending the request would only hang until the
    /// request timeout. Returns the [`VsmEffect::FailFault`] for the node
    /// to release the thread with.
    pub fn fail_fast_fault(&mut self, vpage: u64) -> Vec<VsmEffect> {
        let page = self.pages.get_mut(&vpage).expect("managed page");
        debug_assert!(!page.faulted, "fail-fast on an in-flight fault");
        let peer = page.meta.home;
        vec![VsmEffect::FailFault { vpage, peer }]
    }

    /// Crash-stop conviction of `peer`: prune it from every structure.
    ///
    /// Manager side (pages homed here): the dead node leaves all
    /// copysets, request queues, and invalidation wait-sets. If it owned
    /// a page, ownership migrates to a deterministic successor — the home
    /// node when its copy is current (or no copies survive at all), else
    /// the smallest-id surviving holder, so survivors never read an image
    /// older than one they already hold — and any fault the dead node was
    /// serving is re-driven against the successor. Holder side (pages
    /// homed at the dead node): faults in flight to the dead manager can
    /// never complete and fail with [`VsmEffect::FailFault`].
    ///
    /// Crash-stop loses the dead owner's unreflected writes: recovery
    /// re-serves the newest image a survivor holds. That is the
    /// documented fault-model semantics, not silent corruption.
    pub fn on_peer_down(&mut self, peer: NodeId) -> Vec<VsmEffect> {
        if peer == self.me {
            return Vec::new();
        }
        self.dead.insert(peer);
        let mut fx = Vec::new();
        let mut gpages: Vec<u64> = self.dirs.keys().copied().collect();
        gpages.sort_unstable();
        for gpage in gpages {
            fx.extend(self.mgr_peer_down(gpage, peer));
        }
        let mut vpages: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.meta.home == peer && p.faulted)
            .map(|(&v, _)| v)
            .collect();
        vpages.sort_unstable();
        for vpage in vpages {
            let page = self.pages.get_mut(&vpage).expect("managed page");
            page.faulted = false;
            page.pending_write_fault = false;
            fx.push(VsmEffect::FailFault { vpage, peer });
        }
        fx
    }

    /// A convicted peer's beacons resumed (crash-stop restart). The
    /// restarted node lost its volatile state — its directories rebuild
    /// through its own symmetric convictions during the blackout (it saw
    /// *us* die, which re-homed every page it manages) — so every copy we
    /// hold of a page it manages is stale relative to that rebuilt
    /// directory: invalidate locally and let the next access refault.
    /// Copies of pages the restarted node merely *held* are untouched;
    /// conviction already pruned it from those copysets.
    pub fn on_peer_up(&mut self, peer: NodeId) -> Vec<VsmEffect> {
        if peer == self.me {
            return Vec::new();
        }
        self.dead.remove(&peer);
        let mut vpages: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.meta.home == peer)
            .map(|(&v, _)| v)
            .collect();
        vpages.sort_unstable();
        let mut fx = Vec::new();
        for vpage in vpages {
            let page = self.pages.get_mut(&vpage).expect("managed page");
            if page.mode != VsmMode::Invalid {
                page.mode = VsmMode::Invalid;
                fx.push(VsmEffect::Unmap { vpage });
            }
        }
        fx
    }

    fn mgr_peer_down(&mut self, gpage: u64, peer: NodeId) -> Vec<VsmEffect> {
        let me = self.me;
        let (owner_died, redrive, abandoned, claim) = {
            let dir = self.dirs.get_mut(&gpage).expect("manager directory");
            dir.copyset.remove(&peer);
            dir.queue.retain(|&(n, _)| n != peer);
            let owner_died = dir.owner == peer;
            if owner_died {
                dir.owner = if dir.copyset.is_empty() || dir.copyset.contains(&me) {
                    me
                } else {
                    *dir.copyset.iter().next().expect("non-empty copyset")
                };
                if dir.copyset.is_empty() {
                    dir.copyset.insert(me);
                }
            }
            let mut redrive = false;
            let mut abandoned = false;
            match dir.busy.as_mut() {
                Some(p)
                    if p.requester == peer
                    // The faulting node itself died. With acks still
                    // outstanding the op stays open so late INV_ACKs
                    // drain against it — `mgr_after_invs` then abandons
                    // it (the requester is in the dead set). With nothing
                    // outstanding, abandon now.
                    && p.inv_waiting.is_empty() =>
                {
                    dir.busy = None;
                    abandoned = true;
                }
                Some(p) => {
                    let was_waiting = p.inv_waiting.remove(&peer);
                    let unblocked = was_waiting && p.inv_waiting.is_empty();
                    // Re-drive the grant if the dead peer was the last
                    // straggler we were waiting on, or if it was the
                    // owner an already-issued forward targeted (that
                    // forward died with it).
                    redrive =
                        p.inv_waiting.is_empty() && (unblocked || (owner_died && p.needs_data));
                }
                None => {}
            }
            let claim = owner_died
                && dir.owner == me
                && dir.busy.is_none()
                && dir.copyset.len() == 1
                && dir.copyset.contains(&me);
            (owner_died, redrive, abandoned, claim)
        };
        let _ = owner_died;
        let mut fx = Vec::new();
        if claim {
            // Quiescent failover with no surviving copies elsewhere: the
            // home's frame becomes the authoritative image again.
            let vpage = self.by_gpage[&gpage];
            let page = self.pages.get_mut(&vpage).expect("home page state");
            if !page.faulted && page.mode != VsmMode::Write {
                page.mode = VsmMode::Write;
                fx.push(VsmEffect::MapWrite {
                    vpage,
                    frame: page.meta.frame,
                });
            }
        }
        if redrive {
            fx.extend(self.mgr_reissue(gpage));
        }
        if abandoned {
            let dir = self.dirs.get_mut(&gpage).expect("manager directory");
            if let Some((next, w)) = dir.queue.pop_front() {
                fx.extend(self.mgr_start(gpage, next, w));
            }
        }
        fx
    }

    /// Re-issues the in-progress op's data/grant phase after crash
    /// failover re-pointed `dir.owner` (the original forward died with
    /// the old owner).
    fn mgr_reissue(&mut self, gpage: u64) -> Vec<VsmEffect> {
        let (write, requester, owner) = {
            let dir = &self.dirs[&gpage];
            let p = dir.busy.as_ref().expect("pending op");
            (p.write, p.requester, dir.owner)
        };
        if write {
            return self.mgr_data_phase(gpage);
        }
        if owner == self.me && requester == self.me {
            // Our own read fault, now self-served from the home frame.
            let vpage = self.by_gpage[&gpage];
            return self.complete_fault(vpage);
        }
        vec![VsmEffect::Send {
            dst: owner,
            msg: WireMsg::OsCtl {
                kind: kind::FWD_READ,
                a: gpage,
                b: u64::from(requester.raw()),
            },
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GP: u64 = 3;
    const VP: u64 = 0x4000_0000 >> 13;

    fn setup(n: u16, home: u16) -> Vec<VsmNode> {
        (0..n)
            .map(|i| {
                let mut v = VsmNode::new(NodeId::new(i));
                v.register(GP, VP, NodeId::new(home), PageNum::new(5));
                v
            })
            .collect()
    }

    /// Message pump: applies effects, delivering Send/SendPage across the
    /// node array (data as a single burst), collecting node-local effects.
    fn pump(nodes: &mut [VsmNode], fx: Vec<(usize, VsmEffect)>) -> Vec<(usize, VsmEffect)> {
        let mut local = Vec::new();
        let mut queue: VecDeque<(usize, VsmEffect)> = fx.into();
        while let Some((at, eff)) = queue.pop_front() {
            match eff {
                VsmEffect::Send { dst, msg } => {
                    let out = nodes[dst.index()].on_msg(NodeId::new(at as u16), &msg);
                    queue.extend(out.into_iter().map(|e| (dst.index(), e)));
                }
                VsmEffect::SendPage { dst, gpage, .. } => {
                    let msg = WireMsg::PageData {
                        tag: VSM_TAG_BASE | gpage as u32,
                        index: 0,
                        vals: vec![0; 4].into(),
                        last: true,
                    };
                    let out = nodes[dst.index()].on_msg(NodeId::new(at as u16), &msg);
                    queue.extend(out.into_iter().map(|e| (dst.index(), e)));
                }
                other => local.push((at, other)),
            }
        }
        local
    }

    #[test]
    fn initial_modes() {
        let nodes = setup(3, 0);
        assert_eq!(nodes[0].mode(VP), VsmMode::Write);
        assert_eq!(nodes[1].mode(VP), VsmMode::Invalid);
        assert!(nodes[0].manages(VP));
    }

    #[test]
    fn read_fault_fetches_and_downgrades_owner() {
        let mut nodes = setup(3, 0);
        let fx: Vec<_> = nodes[1]
            .on_fault(VP, false)
            .into_iter()
            .map(|e| (1usize, e))
            .collect();
        let local = pump(&mut nodes, fx);
        assert_eq!(nodes[1].mode(VP), VsmMode::Read);
        assert_eq!(nodes[0].mode(VP), VsmMode::Read, "owner downgraded");
        assert!(local
            .iter()
            .any(|(n, e)| *n == 1 && matches!(e, VsmEffect::ResumeFault { .. })));
        assert!(local
            .iter()
            .any(|(n, e)| *n == 1 && matches!(e, VsmEffect::MapRead { .. })));
    }

    #[test]
    fn write_fault_invalidates_readers_and_migrates() {
        let mut nodes = setup(3, 0);
        // Node 1 and 2 read first.
        for reader in [1usize, 2] {
            let fx: Vec<_> = nodes[reader]
                .on_fault(VP, false)
                .into_iter()
                .map(|e| (reader, e))
                .collect();
            pump(&mut nodes, fx);
        }
        // Node 2 writes.
        let fx: Vec<_> = nodes[2]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (2usize, e))
            .collect();
        let local = pump(&mut nodes, fx);
        assert_eq!(nodes[2].mode(VP), VsmMode::Write);
        assert_eq!(nodes[1].mode(VP), VsmMode::Invalid, "reader invalidated");
        assert_eq!(nodes[0].mode(VP), VsmMode::Invalid, "old owner invalidated");
        assert!(local
            .iter()
            .any(|(n, e)| *n == 1 && matches!(e, VsmEffect::Unmap { .. })));
        // Writer got an upgrade grant (it held a copy): mapped write.
        assert!(local
            .iter()
            .any(|(n, e)| *n == 2 && matches!(e, VsmEffect::MapWrite { .. })));
    }

    #[test]
    fn home_refaults_after_migration() {
        let mut nodes = setup(2, 0);
        // Node 1 takes ownership.
        let fx: Vec<_> = nodes[1]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (1usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[0].mode(VP), VsmMode::Invalid);
        assert_eq!(nodes[1].mode(VP), VsmMode::Write);
        // Home reads back: owner 1 serves and downgrades.
        let fx: Vec<_> = nodes[0]
            .on_fault(VP, false)
            .into_iter()
            .map(|e| (0usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[0].mode(VP), VsmMode::Read);
        assert_eq!(nodes[1].mode(VP), VsmMode::Read);
    }

    #[test]
    fn classifier_recognizes_vsm_traffic() {
        assert!(VsmNode::is_vsm_msg(&WireMsg::OsCtl {
            kind: kind::INV,
            a: 0,
            b: 0
        }));
        assert!(VsmNode::is_vsm_msg(&WireMsg::PageData {
            tag: VSM_TAG_BASE | 7,
            index: 0,
            vals: vec![].into(),
            last: true
        }));
        assert!(!VsmNode::is_vsm_msg(&WireMsg::PageData {
            tag: 7,
            index: 0,
            vals: vec![].into(),
            last: true
        }));
        assert!(!VsmNode::is_vsm_msg(&WireMsg::WriteAck { tag: 0 }));
    }

    #[test]
    fn owner_death_fails_over_to_home() {
        let mut nodes = setup(3, 0);
        // Node 1 takes ownership.
        let fx: Vec<_> = nodes[1]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (1usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[0].mode(VP), VsmMode::Invalid);
        // Node 1 crashes: no surviving copies, so the home reclaims the
        // page writable from its own frame.
        let fx = nodes[0].on_peer_down(NodeId::new(1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, VsmEffect::MapWrite { vpage, .. } if *vpage == VP)));
        assert_eq!(nodes[0].mode(VP), VsmMode::Write);
        // A survivor's read fault is now served by the home again.
        let fx: Vec<_> = nodes[2]
            .on_fault(VP, false)
            .into_iter()
            .map(|e| (2usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[2].mode(VP), VsmMode::Read);
    }

    #[test]
    fn owner_death_prefers_surviving_copy_holder() {
        let mut nodes = setup(3, 0);
        // Node 1 writes (owner), node 2 reads a copy: copyset {1, 2},
        // home's frame is stale.
        let fx: Vec<_> = nodes[1]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (1usize, e))
            .collect();
        pump(&mut nodes, fx);
        let fx: Vec<_> = nodes[2]
            .on_fault(VP, false)
            .into_iter()
            .map(|e| (2usize, e))
            .collect();
        pump(&mut nodes, fx);
        // Owner 1 dies. Node 2 still holds a current copy while the home
        // does not, so node 2 — not the home — becomes the owner.
        let fx = nodes[0].on_peer_down(NodeId::new(1));
        assert!(
            fx.is_empty(),
            "no local remap: a surviving holder serves, got {fx:?}"
        );
        assert_eq!(nodes[0].mode(VP), VsmMode::Invalid, "home stays invalid");
        // The home's own read fault is served by node 2.
        let fx: Vec<_> = nodes[0]
            .on_fault(VP, false)
            .into_iter()
            .map(|e| (0usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[0].mode(VP), VsmMode::Read);
    }

    #[test]
    fn fault_to_dead_home_fails_structurally() {
        let mut nodes = setup(2, 0);
        // Node 1 faults toward home 0, whose crash is then convicted
        // before any reply: the fault must fail, not hang.
        let fx = nodes[1].on_fault(VP, false);
        assert_eq!(fx.len(), 1, "request sent into the void");
        let fx = nodes[1].on_peer_down(NodeId::new(0));
        assert!(fx
            .iter()
            .any(|e| matches!(e, VsmEffect::FailFault { vpage, peer }
                    if *vpage == VP && *peer == NodeId::new(0))));
        // The slot is free again: a later fault (after restart) is legal.
        let _ = nodes[1].on_peer_up(NodeId::new(0));
        let fx = nodes[1].on_fault(VP, false);
        assert_eq!(fx.len(), 1);
    }

    #[test]
    fn requester_death_mid_invalidation_abandons_the_op() {
        let mut nodes = setup(3, 0);
        // Nodes 1 and 2 hold read copies.
        for reader in [1usize, 2] {
            let fx: Vec<_> = nodes[reader]
                .on_fault(VP, false)
                .into_iter()
                .map(|e| (reader, e))
                .collect();
            pump(&mut nodes, fx);
        }
        // Node 1 write-faults: the manager invalidates holders 0 and 2.
        let reqs = nodes[1].on_fault(VP, true);
        let mut invs = Vec::new();
        for eff in reqs {
            if let VsmEffect::Send { msg, .. } = eff {
                invs.extend(nodes[0].on_msg(NodeId::new(1), &msg));
            }
        }
        assert_eq!(invs.len(), 2, "INVs to holders 0 and 2");
        // Deliver the manager's own INV (loopback) and its ack: only
        // holder 2's ack remains outstanding.
        let mut acks = Vec::new();
        for eff in invs {
            if let VsmEffect::Send { dst, msg } = eff {
                if dst == NodeId::new(0) {
                    acks.extend(nodes[0].on_msg(NodeId::new(0), &msg));
                }
            }
        }
        for eff in acks {
            if let VsmEffect::Send { msg, .. } = eff {
                let fx = nodes[0].on_msg(NodeId::new(0), &msg);
                assert!(fx.is_empty(), "still waiting on holder 2");
            }
        }
        // Requester 1 dies before holder 2's ack returns.
        let fx = nodes[0].on_peer_down(NodeId::new(1));
        assert!(fx.is_empty(), "op stays open for the straggler acks");
        // Holder 2's ack now closes the round; the op is abandoned (no
        // grant toward the dead requester) and nothing is queued.
        let ack = WireMsg::OsCtl {
            kind: kind::INV_ACK,
            a: GP,
            b: 2,
        };
        let fx = nodes[0].on_msg(NodeId::new(2), &ack);
        assert!(fx.is_empty(), "abandoned, no grant: {fx:?}");
        // The manager is free to serve a survivor immediately.
        let fx: Vec<_> = nodes[2]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (2usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[2].mode(VP), VsmMode::Write);
    }

    #[test]
    fn owner_death_redrives_an_in_flight_read_fault() {
        let mut nodes = setup(3, 0);
        // Node 1 takes ownership, then node 2's read fault is forwarded
        // to it — and node 1 dies with the forward in flight.
        let fx: Vec<_> = nodes[1]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (1usize, e))
            .collect();
        pump(&mut nodes, fx);
        let reqs = nodes[2].on_fault(VP, false);
        for eff in reqs {
            if let VsmEffect::Send { msg, .. } = eff {
                // Manager 0 forwards to owner 1; drop the forward (crash).
                let _ = nodes[0].on_msg(NodeId::new(2), &msg);
            }
        }
        // Conviction re-points the owner and re-issues the forward; with
        // no surviving copies the home self-serves from its frame.
        let fx: Vec<_> = nodes[0]
            .on_peer_down(NodeId::new(1))
            .into_iter()
            .map(|e| (0usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[2].mode(VP), VsmMode::Read, "fault completed");
    }
}
