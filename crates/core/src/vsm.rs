//! The Virtual Shared Memory baseline (§2.1's "traditional systems").
//!
//! A Li–Hudak-style single-writer, multiple-reader invalidate protocol with
//! a fixed manager per page (the page's home node): read faults fetch a
//! copy from the current owner; write faults invalidate every copy and
//! migrate ownership. All of it runs in (simulated) OS software — page
//! faults, traps, whole-page transfers — which is precisely the overhead
//! Telegraphos hardware eliminates. Experiment E6 races this protocol
//! against the owner-serialized update hardware.
//!
//! The module is a pure state machine: the node feeds it faults and
//! messages and executes the returned [`VsmEffect`]s (sends, mappings,
//! page-data writes), charging the OS costs as it does.

use std::collections::{BTreeSet, HashMap, VecDeque};

use tg_wire::{NodeId, PageNum, WireMsg};

/// OS-control message kinds used by the protocol.
pub mod kind {
    /// Requester → manager: read fault on `a = gpage` by `b = node`.
    pub const READ_REQ: u16 = 0x10;
    /// Requester → manager: write fault.
    pub const WRITE_REQ: u16 = 0x11;
    /// Manager → owner: send the page to `b` and downgrade to read.
    pub const FWD_READ: u16 = 0x12;
    /// Manager → owner: send the page to `b` and invalidate yourself.
    pub const FWD_WRITE: u16 = 0x13;
    /// Manager → holder: invalidate `a = gpage`.
    pub const INV: u16 = 0x14;
    /// Holder → manager: invalidation done (`b = holder`).
    pub const INV_ACK: u16 = 0x15;
    /// Manager → requester: your (still valid) copy may be upgraded.
    pub const GRANT_WRITE: u16 = 0x16;
    /// Requester → manager: read mapping installed (`b = requester`).
    pub const DONE_READ: u16 = 0x17;
    /// Requester → manager: write mapping installed (`b = requester`).
    pub const DONE_WRITE: u16 = 0x18;
}

/// Tag namespace for VSM page-data streams.
pub const VSM_TAG_BASE: u32 = 0x8000_0000;

/// Access mode of a VSM page at one node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VsmMode {
    /// Not mapped; any access faults.
    Invalid,
    /// Mapped read-only.
    Read,
    /// Mapped read-write (this node is the owner).
    Write,
}

/// What the node must do on behalf of the protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VsmEffect {
    /// Send a protocol message (possibly to ourselves — loop it back).
    Send {
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: WireMsg,
    },
    /// Stream our copy of the page (in `frame`) to `dst` as `PageData`
    /// with the VSM tag for `gpage`.
    SendPage {
        /// Destination node.
        dst: NodeId,
        /// Global page id.
        gpage: u64,
        /// Local frame holding the data.
        frame: PageNum,
    },
    /// Map the page read-only at this node (charge map cost).
    MapRead {
        /// Virtual page number.
        vpage: u64,
        /// Local frame.
        frame: PageNum,
    },
    /// Map the page read-write.
    MapWrite {
        /// Virtual page number.
        vpage: u64,
        /// Local frame.
        frame: PageNum,
    },
    /// Remove the mapping (invalidation).
    Unmap {
        /// Virtual page number.
        vpage: u64,
    },
    /// Write an arriving burst of page data into the local frame.
    WriteBurst {
        /// Local frame.
        frame: PageNum,
        /// Word index within the page.
        index: u32,
        /// The words.
        vals: tg_wire::Payload,
    },
    /// The stalled fault on `vpage` is resolved; retry the access.
    ResumeFault {
        /// Virtual page number.
        vpage: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct PageMeta {
    gpage: u64,
    home: NodeId,
    frame: PageNum,
}

#[derive(Clone, Copy, Debug)]
struct PageState {
    meta: PageMeta,
    mode: VsmMode,
    pending_write_fault: bool,
    faulted: bool,
}

#[derive(Clone, Debug)]
struct Pending {
    requester: NodeId,
    write: bool,
    invs_left: usize,
    /// True when the page image must travel from the owner (the requester
    /// holds no current copy).
    needs_data: bool,
}

#[derive(Clone, Debug)]
struct Dir {
    owner: NodeId,
    copyset: BTreeSet<NodeId>,
    busy: Option<Pending>,
    queue: VecDeque<(NodeId, bool)>,
}

/// Per-node VSM state: page table of managed pages plus, at home nodes,
/// the manager directory.
#[derive(Debug)]
pub struct VsmNode {
    me: NodeId,
    pages: HashMap<u64, PageState>,
    by_gpage: HashMap<u64, u64>,
    dirs: HashMap<u64, Dir>,
}

impl VsmNode {
    /// VSM state for node `me`.
    pub fn new(me: NodeId) -> Self {
        VsmNode {
            me,
            pages: HashMap::new(),
            by_gpage: HashMap::new(),
            dirs: HashMap::new(),
        }
    }

    /// Registers a managed page at this node. The home node starts as the
    /// owner with a writable mapping; everyone else starts invalid.
    pub fn register(&mut self, gpage: u64, vpage: u64, home: NodeId, frame: PageNum) {
        let meta = PageMeta { gpage, home, frame };
        let mode = if home == self.me {
            VsmMode::Write
        } else {
            VsmMode::Invalid
        };
        self.pages.insert(
            vpage,
            PageState {
                meta,
                mode,
                pending_write_fault: false,
                faulted: false,
            },
        );
        self.by_gpage.insert(gpage, vpage);
        if home == self.me {
            self.dirs.insert(
                gpage,
                Dir {
                    owner: home,
                    copyset: BTreeSet::from([home]),
                    busy: None,
                    queue: VecDeque::new(),
                },
            );
        }
    }

    /// True if `vpage` is VSM-managed here.
    pub fn manages(&self, vpage: u64) -> bool {
        self.pages.contains_key(&vpage)
    }

    /// Current mode of a managed page.
    ///
    /// # Panics
    ///
    /// Panics if the page is not managed.
    pub fn mode(&self, vpage: u64) -> VsmMode {
        self.pages[&vpage].mode
    }

    /// The local frame backing a managed page.
    pub fn frame(&self, vpage: u64) -> PageNum {
        self.pages[&vpage].meta.frame
    }

    /// Reports a fault on a managed page; returns the protocol actions.
    ///
    /// # Panics
    ///
    /// Panics if the page is not managed or a fault is already pending on
    /// it (the single CPU cannot fault twice).
    pub fn on_fault(&mut self, vpage: u64, write: bool) -> Vec<VsmEffect> {
        let page = self.pages.get_mut(&vpage).expect("managed page");
        assert!(!page.faulted, "double fault on {vpage:#x}");
        page.faulted = true;
        page.pending_write_fault = write;
        let k = if write {
            kind::WRITE_REQ
        } else {
            kind::READ_REQ
        };
        vec![VsmEffect::Send {
            dst: page.meta.home,
            msg: WireMsg::OsCtl {
                kind: k,
                a: page.meta.gpage,
                b: u64::from(self.me.raw()),
            },
        }]
    }

    /// Handles a protocol message (OsCtl with a VSM kind, or PageData with
    /// a VSM tag).
    pub fn on_msg(&mut self, _src: NodeId, msg: &WireMsg) -> Vec<VsmEffect> {
        match *msg {
            WireMsg::OsCtl { kind: k, a, b } => self.on_ctl(k, a, NodeId::new(b as u16)),
            WireMsg::PageData {
                tag,
                index,
                ref vals,
                last,
            } => self.on_page_data(tag, index, vals.clone(), last),
            ref other => unreachable!("not a VSM message: {other:?}"),
        }
    }

    /// True if this message belongs to the VSM protocol.
    pub fn is_vsm_msg(msg: &WireMsg) -> bool {
        match *msg {
            WireMsg::OsCtl { kind: k, .. } => (kind::READ_REQ..=kind::DONE_WRITE).contains(&k),
            WireMsg::PageData { tag, .. } => tag & VSM_TAG_BASE != 0,
            _ => false,
        }
    }

    fn on_ctl(&mut self, k: u16, gpage: u64, who: NodeId) -> Vec<VsmEffect> {
        match k {
            kind::READ_REQ => self.mgr_request(gpage, who, false),
            kind::WRITE_REQ => self.mgr_request(gpage, who, true),
            kind::FWD_READ => {
                // We are the owner: stream the page and downgrade.
                let vpage = self.by_gpage[&gpage];
                let page = self.pages.get_mut(&vpage).expect("owner state");
                let frame = page.meta.frame;
                let mut fx = Vec::new();
                if page.mode == VsmMode::Write {
                    page.mode = VsmMode::Read;
                    fx.push(VsmEffect::MapRead { vpage, frame });
                }
                fx.push(VsmEffect::SendPage {
                    dst: who,
                    gpage,
                    frame,
                });
                fx
            }
            kind::FWD_WRITE => {
                let vpage = self.by_gpage[&gpage];
                let page = self.pages.get_mut(&vpage).expect("owner state");
                let frame = page.meta.frame;
                page.mode = VsmMode::Invalid;
                vec![
                    VsmEffect::SendPage {
                        dst: who,
                        gpage,
                        frame,
                    },
                    VsmEffect::Unmap { vpage },
                ]
            }
            kind::INV => {
                let vpage = self.by_gpage[&gpage];
                let page = self.pages.get_mut(&vpage).expect("holder state");
                let home = page.meta.home;
                let mut fx = Vec::new();
                if page.mode != VsmMode::Invalid {
                    page.mode = VsmMode::Invalid;
                    fx.push(VsmEffect::Unmap { vpage });
                }
                fx.push(VsmEffect::Send {
                    dst: home,
                    msg: WireMsg::OsCtl {
                        kind: kind::INV_ACK,
                        a: gpage,
                        b: u64::from(self.me.raw()),
                    },
                });
                fx
            }
            kind::INV_ACK => self.mgr_inv_ack(gpage),
            kind::GRANT_WRITE => {
                let vpage = self.by_gpage[&gpage];
                self.complete_fault(vpage)
            }
            kind::DONE_READ => self.mgr_done(gpage, who, false),
            kind::DONE_WRITE => self.mgr_done(gpage, who, true),
            other => unreachable!("unknown VSM kind {other:#x}"),
        }
    }

    fn on_page_data(
        &mut self,
        tag: u32,
        index: u32,
        vals: tg_wire::Payload,
        last: bool,
    ) -> Vec<VsmEffect> {
        let gpage = u64::from(tag & !VSM_TAG_BASE);
        let vpage = self.by_gpage[&gpage];
        let frame = self.pages[&vpage].meta.frame;
        let mut fx = vec![VsmEffect::WriteBurst { frame, index, vals }];
        if last {
            fx.extend(self.complete_fault(vpage));
        }
        fx
    }

    /// Installs the mapping for a resolved fault and notifies the manager.
    fn complete_fault(&mut self, vpage: u64) -> Vec<VsmEffect> {
        let page = self.pages.get_mut(&vpage).expect("faulted page");
        assert!(page.faulted, "completion without a fault");
        page.faulted = false;
        let frame = page.meta.frame;
        let (map, done_kind) = if page.pending_write_fault {
            page.mode = VsmMode::Write;
            (VsmEffect::MapWrite { vpage, frame }, kind::DONE_WRITE)
        } else {
            page.mode = VsmMode::Read;
            (VsmEffect::MapRead { vpage, frame }, kind::DONE_READ)
        };
        vec![
            map,
            VsmEffect::ResumeFault { vpage },
            VsmEffect::Send {
                dst: page.meta.home,
                msg: WireMsg::OsCtl {
                    kind: done_kind,
                    a: page.meta.gpage,
                    b: u64::from(self.me.raw()),
                },
            },
        ]
    }

    // ---------------- manager side ----------------

    fn mgr_request(&mut self, gpage: u64, requester: NodeId, write: bool) -> Vec<VsmEffect> {
        let dir = self.dirs.get_mut(&gpage).expect("we are the manager");
        if dir.busy.is_some() {
            dir.queue.push_back((requester, write));
            return Vec::new();
        }
        self.mgr_start(gpage, requester, write)
    }

    fn mgr_start(&mut self, gpage: u64, requester: NodeId, write: bool) -> Vec<VsmEffect> {
        let me = self.me;
        let dir = self.dirs.get_mut(&gpage).expect("manager directory");
        let owner = dir.owner;
        let had_copy = dir.copyset.contains(&requester);
        let mut fx = Vec::new();
        if write {
            // The owner is invalidated through FWD_WRITE when it must also
            // ship the data; otherwise it gets a plain INV like any holder.
            let needs_data = !had_copy && owner != requester;
            let inv_targets: Vec<NodeId> = dir
                .copyset
                .iter()
                .copied()
                .filter(|&n| n != requester && !(needs_data && n == owner))
                .collect();
            dir.busy = Some(Pending {
                requester,
                write,
                invs_left: inv_targets.len(),
                needs_data,
            });
            for t in inv_targets {
                fx.push(VsmEffect::Send {
                    dst: t,
                    msg: WireMsg::OsCtl {
                        kind: kind::INV,
                        a: gpage,
                        b: 0,
                    },
                });
            }
            if fx.is_empty() {
                // No invalidations outstanding: move straight to the data /
                // grant phase.
                fx.extend(self.mgr_data_phase(gpage));
            }
        } else {
            dir.busy = Some(Pending {
                requester,
                write,
                invs_left: 0,
                needs_data: true,
            });
            let _ = (me, had_copy);
            fx.push(VsmEffect::Send {
                dst: owner,
                msg: WireMsg::OsCtl {
                    kind: kind::FWD_READ,
                    a: gpage,
                    b: u64::from(requester.raw()),
                },
            });
        }
        fx
    }

    fn mgr_inv_ack(&mut self, gpage: u64) -> Vec<VsmEffect> {
        let dir = self.dirs.get_mut(&gpage).expect("manager directory");
        let pending = dir.busy.as_mut().expect("ack without pending op");
        assert!(pending.invs_left > 0, "unexpected invalidation ack");
        pending.invs_left -= 1;
        if pending.invs_left == 0 {
            self.mgr_data_phase(gpage)
        } else {
            Vec::new()
        }
    }

    /// Write-fault phase two: hand the data (or an upgrade grant) to the
    /// requester.
    fn mgr_data_phase(&mut self, gpage: u64) -> Vec<VsmEffect> {
        let dir = self.dirs.get_mut(&gpage).expect("manager directory");
        let pending = dir.busy.as_ref().expect("pending op");
        let (requester, owner) = (pending.requester, dir.owner);
        if pending.needs_data {
            vec![VsmEffect::Send {
                dst: owner,
                msg: WireMsg::OsCtl {
                    kind: kind::FWD_WRITE,
                    a: gpage,
                    b: u64::from(requester.raw()),
                },
            }]
        } else {
            // Upgrade in place: the requester's copy is current.
            vec![VsmEffect::Send {
                dst: requester,
                msg: WireMsg::OsCtl {
                    kind: kind::GRANT_WRITE,
                    a: gpage,
                    b: 0,
                },
            }]
        }
    }

    fn mgr_done(&mut self, gpage: u64, requester: NodeId, write: bool) -> Vec<VsmEffect> {
        let dir = self.dirs.get_mut(&gpage).expect("manager directory");
        let pending = dir.busy.take().expect("done without pending op");
        debug_assert_eq!(pending.requester, requester);
        debug_assert_eq!(pending.write, write);
        if write {
            dir.owner = requester;
            dir.copyset = BTreeSet::from([requester]);
        } else {
            dir.copyset.insert(requester);
        }
        if let Some((next, w)) = dir.queue.pop_front() {
            self.mgr_start(gpage, next, w)
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GP: u64 = 3;
    const VP: u64 = 0x4000_0000 >> 13;

    fn setup(n: u16, home: u16) -> Vec<VsmNode> {
        (0..n)
            .map(|i| {
                let mut v = VsmNode::new(NodeId::new(i));
                v.register(GP, VP, NodeId::new(home), PageNum::new(5));
                v
            })
            .collect()
    }

    /// Message pump: applies effects, delivering Send/SendPage across the
    /// node array (data as a single burst), collecting node-local effects.
    fn pump(nodes: &mut [VsmNode], fx: Vec<(usize, VsmEffect)>) -> Vec<(usize, VsmEffect)> {
        let mut local = Vec::new();
        let mut queue: VecDeque<(usize, VsmEffect)> = fx.into();
        while let Some((at, eff)) = queue.pop_front() {
            match eff {
                VsmEffect::Send { dst, msg } => {
                    let out = nodes[dst.index()].on_msg(NodeId::new(at as u16), &msg);
                    queue.extend(out.into_iter().map(|e| (dst.index(), e)));
                }
                VsmEffect::SendPage { dst, gpage, .. } => {
                    let msg = WireMsg::PageData {
                        tag: VSM_TAG_BASE | gpage as u32,
                        index: 0,
                        vals: vec![0; 4].into(),
                        last: true,
                    };
                    let out = nodes[dst.index()].on_msg(NodeId::new(at as u16), &msg);
                    queue.extend(out.into_iter().map(|e| (dst.index(), e)));
                }
                other => local.push((at, other)),
            }
        }
        local
    }

    #[test]
    fn initial_modes() {
        let nodes = setup(3, 0);
        assert_eq!(nodes[0].mode(VP), VsmMode::Write);
        assert_eq!(nodes[1].mode(VP), VsmMode::Invalid);
        assert!(nodes[0].manages(VP));
    }

    #[test]
    fn read_fault_fetches_and_downgrades_owner() {
        let mut nodes = setup(3, 0);
        let fx: Vec<_> = nodes[1]
            .on_fault(VP, false)
            .into_iter()
            .map(|e| (1usize, e))
            .collect();
        let local = pump(&mut nodes, fx);
        assert_eq!(nodes[1].mode(VP), VsmMode::Read);
        assert_eq!(nodes[0].mode(VP), VsmMode::Read, "owner downgraded");
        assert!(local
            .iter()
            .any(|(n, e)| *n == 1 && matches!(e, VsmEffect::ResumeFault { .. })));
        assert!(local
            .iter()
            .any(|(n, e)| *n == 1 && matches!(e, VsmEffect::MapRead { .. })));
    }

    #[test]
    fn write_fault_invalidates_readers_and_migrates() {
        let mut nodes = setup(3, 0);
        // Node 1 and 2 read first.
        for reader in [1usize, 2] {
            let fx: Vec<_> = nodes[reader]
                .on_fault(VP, false)
                .into_iter()
                .map(|e| (reader, e))
                .collect();
            pump(&mut nodes, fx);
        }
        // Node 2 writes.
        let fx: Vec<_> = nodes[2]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (2usize, e))
            .collect();
        let local = pump(&mut nodes, fx);
        assert_eq!(nodes[2].mode(VP), VsmMode::Write);
        assert_eq!(nodes[1].mode(VP), VsmMode::Invalid, "reader invalidated");
        assert_eq!(nodes[0].mode(VP), VsmMode::Invalid, "old owner invalidated");
        assert!(local
            .iter()
            .any(|(n, e)| *n == 1 && matches!(e, VsmEffect::Unmap { .. })));
        // Writer got an upgrade grant (it held a copy): mapped write.
        assert!(local
            .iter()
            .any(|(n, e)| *n == 2 && matches!(e, VsmEffect::MapWrite { .. })));
    }

    #[test]
    fn home_refaults_after_migration() {
        let mut nodes = setup(2, 0);
        // Node 1 takes ownership.
        let fx: Vec<_> = nodes[1]
            .on_fault(VP, true)
            .into_iter()
            .map(|e| (1usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[0].mode(VP), VsmMode::Invalid);
        assert_eq!(nodes[1].mode(VP), VsmMode::Write);
        // Home reads back: owner 1 serves and downgrades.
        let fx: Vec<_> = nodes[0]
            .on_fault(VP, false)
            .into_iter()
            .map(|e| (0usize, e))
            .collect();
        pump(&mut nodes, fx);
        assert_eq!(nodes[0].mode(VP), VsmMode::Read);
        assert_eq!(nodes[1].mode(VP), VsmMode::Read);
    }

    #[test]
    fn classifier_recognizes_vsm_traffic() {
        assert!(VsmNode::is_vsm_msg(&WireMsg::OsCtl {
            kind: kind::INV,
            a: 0,
            b: 0
        }));
        assert!(VsmNode::is_vsm_msg(&WireMsg::PageData {
            tag: VSM_TAG_BASE | 7,
            index: 0,
            vals: vec![].into(),
            last: true
        }));
        assert!(!VsmNode::is_vsm_msg(&WireMsg::PageData {
            tag: 7,
            index: 0,
            vals: vec![].into(),
            last: true
        }));
        assert!(!VsmNode::is_vsm_msg(&WireMsg::WriteAck));
    }
}
