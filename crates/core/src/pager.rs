//! Remote-memory paging (the paper's ref \[21\]: "Using Remote Memory to
//! avoid Disk Thrashing").
//!
//! A workstation whose working set exceeds its local memory pages against
//! a backing store. Classically that store is a disk; with Telegraphos it
//! can be another workstation's memory, reached with the same hardware
//! page streams the coherence machinery uses — orders of magnitude faster
//! than a seek. This module implements both backings behind one pager so
//! experiment E11 can race them.
//!
//! The pager manages a window of *paged virtual pages* backed by local
//! segment frames. At most `capacity` of them are resident; touching a
//! non-resident page faults, the OS evicts the least-recently-used
//! resident page (writing it back to the backing store) and fetches the
//! faulted one.

use std::collections::{HashMap, VecDeque};

use tg_wire::{NodeId, PageNum, WireMsg};

/// Tag namespace for pager fetch streams.
pub const PAGER_TAG_BASE: u32 = 0x2000_0000;

/// OS-task code: a disk transfer completed (`a` = vpage).
pub const TASK_DISK_DONE: u16 = 0x200;

/// Where evicted pages go.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backing {
    /// A spinning disk: pure latency per page transfer (seek + rotation +
    /// transfer; early-90s disks: ~15 ms).
    Disk,
    /// Another workstation's memory: the page lives in a frame of the
    /// server's exported segment and moves via hardware page streams.
    RemoteMemory {
        /// The memory server.
        server: NodeId,
    },
}

/// What the node must do for the pager.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PagerEffect {
    /// Send a message through the HIB (page fetch / evicted data).
    SendMsg {
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: WireMsg,
    },
    /// Stream the local frame's content to the server frame (eviction
    /// write-back over remote writes).
    PushPage {
        /// The memory server.
        dst: NodeId,
        /// Frame in the server's segment.
        server_frame: PageNum,
        /// Local frame holding the victim page.
        local_frame: PageNum,
    },
    /// Copy one local frame to another (resident-slot recycling).
    /// `from` is the local frame of the victim, whose slot `to` reuses.
    Unmap {
        /// Victim virtual page.
        vpage: u64,
    },
    /// Map the faulted page at its (re)assigned local frame.
    Map {
        /// Faulted virtual page.
        vpage: u64,
        /// Local frame now holding it.
        frame: PageNum,
    },
    /// Schedule a disk-latency timer; the node must deliver
    /// [`TASK_DISK_DONE`] with `a = vpage` after its disk latency.
    DiskWait {
        /// The faulted virtual page.
        vpage: u64,
    },
    /// The fault is resolved; retry the access.
    Resume,
}

#[derive(Clone, Copy, Debug)]
struct PagedPage {
    /// Local frame when resident.
    local_frame: PageNum,
    /// Backing slot (server frame for remote memory; symbolic for disk).
    server_frame: PageNum,
    resident: bool,
}

/// Statistics the pager keeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Page faults taken.
    pub faults: u64,
    /// Evictions performed.
    pub evictions: u64,
}

/// The per-node pager.
#[derive(Debug)]
pub struct RemotePager {
    backing: Backing,
    capacity: usize,
    pages: HashMap<u64, PagedPage>,
    /// LRU order of resident pages (front = least recent).
    lru: VecDeque<u64>,
    pending: Option<u64>,
    /// True while the remote-memory server is convicted dead by the
    /// failure detector: faults fail fast instead of fetching.
    server_down: bool,
    stats: PagerStats,
}

impl RemotePager {
    /// A pager with room for `capacity` resident pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(backing: Backing, capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one resident page");
        RemotePager {
            backing,
            capacity,
            pages: HashMap::new(),
            lru: VecDeque::new(),
            pending: None,
            server_down: false,
            stats: PagerStats::default(),
        }
    }

    /// The configured backing store.
    pub fn backing(&self) -> Backing {
        self.backing
    }

    /// The remote-memory server, if the backing is remote.
    pub fn server(&self) -> Option<NodeId> {
        match self.backing {
            Backing::RemoteMemory { server } => Some(server),
            Backing::Disk => None,
        }
    }

    /// True while the backing memory server is convicted dead.
    pub fn server_is_down(&self) -> bool {
        self.server_down
    }

    /// The failure detector convicted `peer`. If it is our memory server,
    /// future faults fail fast and the in-flight fetch (if any) is
    /// abandoned — its faulted vpage is returned so the node can release
    /// the waiting thread with a structured error. Pages already resident
    /// stay usable; pages swapped out to the dead server are simply lost
    /// until it restarts (crash-stop).
    pub fn on_peer_down(&mut self, peer: NodeId) -> Option<u64> {
        if self.server() != Some(peer) {
            return None;
        }
        self.server_down = true;
        self.pending.take()
    }

    /// The convicted server's beacons resumed: resume fetching. The
    /// restarted server's frames were re-zeroed by the crash, which is
    /// the documented crash-stop data loss, not an inconsistency.
    pub fn on_peer_up(&mut self, peer: NodeId) {
        if self.server() == Some(peer) {
            self.server_down = false;
        }
    }

    /// Fault/eviction counters.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Registers a paged virtual page. `local_frame` is the frame used
    /// while resident; `server_frame` is its backing slot. Pages start
    /// non-resident.
    pub fn register(&mut self, vpage: u64, local_frame: PageNum, server_frame: PageNum) {
        self.pages.insert(
            vpage,
            PagedPage {
                local_frame,
                server_frame,
                resident: false,
            },
        );
    }

    /// True if `vpage` is pager-managed.
    pub fn manages(&self, vpage: u64) -> bool {
        self.pages.contains_key(&vpage)
    }

    /// True if the page is currently resident (mapped).
    pub fn is_resident(&self, vpage: u64) -> bool {
        self.pages.get(&vpage).map(|p| p.resident).unwrap_or(false)
    }

    /// Notes a successful access for LRU bookkeeping. The node calls this
    /// on every access to a managed page (cheap: only on pager pages).
    pub fn touch(&mut self, vpage: u64) {
        if let Some(pos) = self.lru.iter().position(|&v| v == vpage) {
            self.lru.remove(pos);
            self.lru.push_back(vpage);
        }
    }

    /// Handles a fault on a managed, non-resident page.
    ///
    /// # Panics
    ///
    /// Panics if the page is unmanaged, already resident, or another pager
    /// fault is already in flight (the single CPU faults one at a time).
    pub fn on_fault(&mut self, vpage: u64) -> Vec<PagerEffect> {
        assert!(self.pending.is_none(), "pager fault already in flight");
        let page = *self.pages.get(&vpage).expect("managed page");
        assert!(!page.resident, "fault on a resident page");
        self.stats.faults += 1;
        self.pending = Some(vpage);

        let mut fx = Vec::new();
        // Evict if at capacity.
        if self.lru.len() >= self.capacity {
            let victim = self.lru.pop_front().expect("capacity > 0");
            let v = self.pages.get_mut(&victim).expect("resident victim");
            v.resident = false;
            self.stats.evictions += 1;
            fx.push(PagerEffect::Unmap { vpage: victim });
            if let Backing::RemoteMemory { server } = self.backing {
                fx.push(PagerEffect::PushPage {
                    dst: server,
                    server_frame: v.server_frame,
                    local_frame: v.local_frame,
                });
            }
            // Disk write-back overlaps the fetch seek; folded into the
            // single disk latency below.
        }

        match self.backing {
            Backing::Disk => fx.push(PagerEffect::DiskWait { vpage }),
            Backing::RemoteMemory { server } => {
                fx.push(PagerEffect::SendMsg {
                    dst: server,
                    msg: WireMsg::PageFetchReq {
                        page: page.server_frame.raw(),
                        tag: PAGER_TAG_BASE | vpage as u32,
                    },
                });
            }
        }
        fx
    }

    /// True if this PageData tag belongs to a pager fetch.
    pub fn is_pager_tag(tag: u32) -> bool {
        tag & PAGER_TAG_BASE != 0
            && tag & crate::vsm::VSM_TAG_BASE == 0
            && tag & crate::os::REPL_TAG_BASE == 0
    }

    /// Accepts a fetch burst; completes the fault on the last one.
    pub fn on_page_data(&mut self, tag: u32, last: bool) -> Vec<PagerEffect> {
        let vpage = u64::from(tag & !PAGER_TAG_BASE);
        if self.pending != Some(vpage) {
            // A burst from a fetch that crash cleanup already abandoned
            // (the server was convicted dead with data in flight): stale.
            return Vec::new();
        }
        if !last {
            return Vec::new();
        }
        self.complete(vpage)
    }

    /// Completes a disk fetch (the node's `TASK_DISK_DONE` handler).
    pub fn on_disk_done(&mut self, vpage: u64) -> Vec<PagerEffect> {
        self.complete(vpage)
    }

    fn complete(&mut self, vpage: u64) -> Vec<PagerEffect> {
        debug_assert_eq!(self.pending, Some(vpage));
        self.pending = None;
        let page = self.pages.get_mut(&vpage).expect("managed page");
        page.resident = true;
        self.lru.push_back(vpage);
        vec![
            PagerEffect::Map {
                vpage,
                frame: page.local_frame,
            },
            PagerEffect::Resume,
        ]
    }

    /// The local frame backing a managed page.
    pub fn local_frame(&self, vpage: u64) -> PageNum {
        self.pages[&vpage].local_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager(backing: Backing, cap: usize, pages: u64) -> RemotePager {
        let mut p = RemotePager::new(backing, cap);
        for v in 0..pages {
            p.register(v, PageNum::new(v as u32), PageNum::new(100 + v as u32));
        }
        p
    }

    #[test]
    fn first_touch_faults_and_maps() {
        let mut p = pager(Backing::Disk, 2, 3);
        assert!(!p.is_resident(0));
        let fx = p.on_fault(0);
        assert_eq!(fx, vec![PagerEffect::DiskWait { vpage: 0 }]);
        let fx = p.on_disk_done(0);
        assert!(fx.contains(&PagerEffect::Map {
            vpage: 0,
            frame: PageNum::new(0)
        }));
        assert!(fx.contains(&PagerEffect::Resume));
        assert!(p.is_resident(0));
        assert_eq!(p.stats().faults, 1);
        assert_eq!(p.stats().evictions, 0);
    }

    #[test]
    fn lru_eviction_over_capacity() {
        let mut p = pager(Backing::Disk, 2, 3);
        for v in [0u64, 1] {
            p.on_fault(v);
            p.on_disk_done(v);
        }
        // Touch 0 so 1 becomes the LRU victim.
        p.touch(0);
        let fx = p.on_fault(2);
        assert!(fx.contains(&PagerEffect::Unmap { vpage: 1 }));
        p.on_disk_done(2);
        assert!(p.is_resident(0));
        assert!(!p.is_resident(1));
        assert!(p.is_resident(2));
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn remote_backing_pushes_and_fetches() {
        let server = NodeId::new(3);
        let mut p = pager(Backing::RemoteMemory { server }, 1, 2);
        let fx = p.on_fault(0);
        assert!(matches!(
            fx.as_slice(),
            [PagerEffect::SendMsg {
                dst,
                msg: WireMsg::PageFetchReq { page: 100, .. }
            }] if *dst == server
        ));
        let tag = PAGER_TAG_BASE; // vpage 0
        p.on_page_data(tag, true);
        // Next fault evicts page 0 back to the server.
        let fx = p.on_fault(1);
        assert!(fx.iter().any(|e| matches!(
            e,
            PagerEffect::PushPage {
                server_frame,
                ..
            } if server_frame.raw() == 100
        )));
        assert!(fx.iter().any(|e| matches!(
            e,
            PagerEffect::SendMsg {
                msg: WireMsg::PageFetchReq { page: 101, .. },
                ..
            }
        )));
    }

    #[test]
    fn tag_namespace_is_disjoint() {
        assert!(RemotePager::is_pager_tag(PAGER_TAG_BASE | 7));
        assert!(!RemotePager::is_pager_tag(crate::vsm::VSM_TAG_BASE | 7));
        assert!(!RemotePager::is_pager_tag(crate::os::REPL_TAG_BASE | 7));
        assert!(!RemotePager::is_pager_tag(7));
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn one_fault_at_a_time() {
        let mut p = pager(Backing::Disk, 1, 2);
        p.on_fault(0);
        p.on_fault(1);
    }
}
