//! Cluster construction and the experiment-facing API.

use tg_hib::{HibConfig, HibTick, PageMode};
use tg_mem::{PAddr, PageFlags, VAddr};
use tg_net::{
    build_network_with, CreditLedger, DetectParams, FabricView, FaultInjector, FaultPlan,
    FaultStats, LinkId, NetConfig, RelParams, StalledLink, Topology, Vertex,
};
use tg_sim::{CompId, Engine, MetricsRegistry, ProgressMeter, RunLimit, SimTime, WatchdogOutcome};
use tg_wire::metric;
use tg_wire::trace::{OpKind, SharedProbe, Site};
use tg_wire::{GOffset, NodeId, PageNum, TimingConfig, PAGE_BYTES};

use crate::event::ClusterEvent;
use crate::node::Node;
use crate::observe::TraceCollector;
use crate::os::{Os, ReplicatePolicy};
use crate::pager::{Backing, RemotePager};
use crate::process::Process;

/// Base virtual address of each node's private heap.
pub const PRIVATE_VA_BASE: u64 = 0x1000_0000;
/// Base virtual address of the cluster-wide shared region (same on every
/// node, as the OS of the paper would arrange).
pub const SHARED_VA_BASE: u64 = 0x4000_0000;
/// Base virtual address of a node's pager-managed region (experiment E11).
pub const PAGED_VA_BASE: u64 = 0x6000_0000;
/// Segment frames reserved for OS use (replication, VSM frames) per node.
const OS_FRAME_POOL: u32 = 256;

/// One cluster-wide shared page: a virtual page (common to all nodes)
/// backed by a page of the home node's exported segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SharedPage {
    /// Index within the shared region (defines the virtual address).
    pub index: u64,
    /// Home node.
    pub home: NodeId,
    /// Page within the home node's segment.
    pub home_page: PageNum,
}

impl SharedPage {
    /// Virtual address of byte `off` within the page (any node).
    ///
    /// # Panics
    ///
    /// Panics if `off` exceeds the page.
    pub fn va(&self, off: u64) -> VAddr {
        assert!(off < PAGE_BYTES, "offset beyond the page");
        VAddr::new(SHARED_VA_BASE + self.index * PAGE_BYTES + off)
    }

    /// The common virtual page number.
    pub fn vpage(&self) -> u64 {
        (SHARED_VA_BASE + self.index * PAGE_BYTES) >> tg_wire::PAGE_SHIFT
    }
}

/// Builder for a simulated Telegraphos cluster.
///
/// # Example
///
/// ```
/// use telegraphos::{Action, ClusterBuilder, Script};
///
/// let mut cluster = ClusterBuilder::new(2).build();
/// let page = cluster.alloc_shared(1);
/// cluster.set_process(
///     0,
///     Script::new(vec![
///         Action::Write(page.va(0), 42),
///         Action::Fence,
///     ]),
/// );
/// cluster.run();
/// assert_eq!(cluster.read_shared(&page, 0), 42);
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    nodes: u16,
    topology: Option<Topology>,
    timing: TimingConfig,
    hib: HibConfig,
    policy: ReplicatePolicy,
    private_pages: u64,
    reliability: Option<RelParams>,
    faults: Option<FaultPlan>,
}

impl ClusterBuilder {
    /// A cluster of `nodes` workstations (default: one switch, star wiring,
    /// Telegraphos I calibration).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: u16) -> Self {
        assert!(nodes > 0, "a cluster needs nodes");
        ClusterBuilder {
            nodes,
            topology: None,
            timing: TimingConfig::telegraphos_i(),
            hib: HibConfig::telegraphos_i(),
            policy: ReplicatePolicy::Never,
            private_pages: 64,
            reliability: None,
            faults: None,
        }
    }

    /// Uses a custom wiring (must have exactly `nodes` endpoints).
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topology = Some(topo);
        self
    }

    /// Overrides the timing calibration.
    pub fn timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides the HIB configuration.
    pub fn hib_config(mut self, hib: HibConfig) -> Self {
        self.hib = hib;
        self
    }

    /// Sets the page-replication policy of every node's OS.
    pub fn replicate_policy(mut self, policy: ReplicatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enrolls every fabric link in the link-level reliability protocol
    /// (per-link sequence numbers + checksums, ACK/NACK, a retransmit
    /// buffer with timeout and backoff, and the credit-resync handshake).
    /// Without this — and without [`ClusterBuilder::with_faults`] — links
    /// behave as the lossless hardware of the paper.
    pub fn reliable_links(mut self, params: RelParams) -> Self {
        self.reliability = Some(params);
        self
    }

    /// Installs a seeded fault plan: frames and credits are dropped,
    /// corrupted, blacked out or wedged per the plan, deterministically
    /// from its seed. Implies [`ClusterBuilder::reliable_links`] with
    /// default parameters unless explicitly configured.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if the topology endpoint count mismatches the node count or
    /// the network is disconnected.
    pub fn build(self) -> Cluster {
        let topo = self.topology.unwrap_or_else(|| Topology::star(self.nodes));
        assert_eq!(
            topo.endpoint_count(),
            self.nodes as usize,
            "topology endpoints != cluster nodes"
        );
        let mut engine: Engine<ClusterEvent> = Engine::new();
        let mut node_ids = Vec::new();
        for i in 0..self.nodes {
            let id = NodeId::new(i);
            let mut os = Os::new(id);
            os.set_policy(self.policy);
            let seg_pages = self.hib.segment_pages;
            os.grant_frames((seg_pages.saturating_sub(OS_FRAME_POOL)..seg_pages).map(PageNum::new));
            let node = Node::new(id, self.timing.clone(), self.hib.clone(), os);
            node_ids.push(engine.add(node));
        }
        let reliability = self
            .reliability
            .or_else(|| self.faults.as_ref().map(|_| RelParams::default()));
        let injector = self.faults.map(FaultInjector::new);
        let config = NetConfig {
            reliability,
            injector: injector.clone(),
        };
        let handles = build_network_with(&mut engine, &topo, &self.timing, &node_ids, &config)
            .expect("connected fabric");
        let view = handles.view.clone();
        for (idx, wiring) in handles.endpoints.into_iter().enumerate() {
            let node = engine
                .get_mut::<Node>(node_ids[idx])
                .expect("node component");
            node.hib_mut()
                .wire(wiring.tx, wiring.rx_upstream, wiring.rx_capacity);
            if let Some(inj) = injector.as_ref() {
                node.hib_mut().set_injector(inj.clone());
            }
            // Map the private heap.
            for p in 0..self.private_pages {
                node.mmu_mut().table_mut().map(
                    (PRIVATE_VA_BASE >> tg_wire::PAGE_SHIFT) + p,
                    PAddr::private(p * PAGE_BYTES),
                    PageFlags::RW,
                );
            }
        }
        Cluster {
            engine,
            nodes: node_ids,
            switches: handles.switches,
            n: self.nodes,
            next_seg_page: vec![0; self.nodes as usize],
            next_index: 0,
            max_seg_page: self.hib.segment_pages.saturating_sub(OS_FRAME_POOL),
            timing: self.timing,
            injector,
            view,
        }
    }
}

/// Per-component event counters plus component-kind-specific congestion
/// detail, as reported by [`Cluster::component_stats`].
#[derive(Clone, Debug)]
pub struct ComponentReport {
    /// The component's registered name (`node0`, `switch1`, ...).
    pub name: String,
    /// Engine-level delivered/scheduled event counters.
    pub events: tg_sim::ComponentStats,
    /// Congestion and queue detail for the component kind.
    pub detail: ComponentDetail,
}

/// Kind-specific detail of a [`ComponentReport`].
#[derive(Clone, Debug)]
pub enum ComponentDetail {
    /// A workstation node (its HIB's queue state).
    Node {
        /// Deepest occupancy the HIB receive FIFO has reached.
        rx_fifo_high_water: u32,
        /// Packets currently queued in the HIB receive FIFO.
        rx_fifo_depth: usize,
        /// Packets currently queued for transmission.
        tx_queue_depth: usize,
        /// Total simulated time the transmit port spent blocked on
        /// credits.
        credit_stall: SimTime,
    },
    /// A fabric switch.
    Switch {
        /// Packets forwarded.
        packets: u64,
        /// Bytes forwarded.
        bytes: u64,
        /// Forwarding attempts deferred for want of credit or a busy
        /// output.
        blocked: u64,
        /// Deepest input-FIFO occupancy seen on any port.
        fifo_high_water: u32,
        /// Packets currently queued across all input FIFOs.
        fifo_depth: usize,
        /// Total simulated time output ports spent blocked on credits,
        /// summed across ports.
        credit_stall: SimTime,
    },
}

/// Statistics for one **directed** link hop, joined from both ends: the
/// transmit half from the port driving the link, the receive half from
/// the input FIFO at its far end. Assembled by
/// [`Cluster::link_snapshots`]; the canonical metric names for these
/// fields are `link.<from>-<to>.<metric>` (see [`tg_wire::metric`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkSnapshot {
    /// The directed link.
    pub link: LinkId,
    /// Frames launched on the link (fresh + retransmitted).
    pub tx_packets: u64,
    /// Wire bytes launched on the link.
    pub tx_bytes: u64,
    /// Credits in hand at the transmitting port.
    pub credits: u32,
    /// Initial credit allowance.
    pub allowance: u32,
    /// Cumulative credit-stall time at the transmitting port.
    pub credit_stall: SimTime,
    /// Frames retransmitted on the link.
    pub retransmits: u64,
    /// Wire bytes retransmitted on the link (header + payload of every
    /// retransmission — the wire-efficiency cost of recovery).
    pub retx_bytes: u64,
    /// Completed credit-resync handshakes on the link.
    pub resyncs: u64,
    /// Credit-resync probes issued on the link.
    pub resync_probes: u64,
    /// Packets sitting in the receiving end's input FIFO right now.
    pub rx_fifo_depth: u32,
    /// Deepest occupancy that FIFO ever reached.
    pub rx_fifo_high_water: u32,
    /// Frames the receiving end's link layer rejected.
    pub rx_discards: u64,
}

/// Queue and link state of one workstation when the watchdog tripped.
#[derive(Clone, Debug)]
pub struct StalledNode {
    /// The workstation.
    pub node: NodeId,
    /// Packets awaiting transmission at its HIB.
    pub tx_queue: usize,
    /// Packets sitting in its receive FIFO.
    pub rx_fifo: usize,
    /// Frames launched but not link-acknowledged on its output link.
    pub unacked: usize,
    /// Credits in hand at its transmit port.
    pub credits: u32,
    /// Whether its output link has been declared dead.
    pub dead: bool,
}

impl std::fmt::Display for StalledNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node{}: {} queued, {} in rx FIFO, {} unacked, {} credits{}",
            self.node.raw(),
            self.tx_queue,
            self.rx_fifo,
            self.unacked,
            self.credits,
            if self.dead { ", link DEAD" } else { "" }
        )
    }
}

/// A structured no-progress diagnosis, assembled by
/// [`Cluster::run_watchdog`] when a full watchdog window elapses with
/// events still firing but nothing committing: instead of spinning (or
/// panicking) the run stops and names the links and nodes holding the
/// fabric.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// Simulated time when the stall was declared.
    pub at: SimTime,
    /// Progress (committed packets + completed CPU operations) when the
    /// meter stopped advancing.
    pub progress: u64,
    /// Links held up: dead, carrying unacknowledged frames, or
    /// credit-starved with traffic pending. Stalls attributable to a
    /// crash-injected site (either endpoint inside an active crash
    /// window) are filtered out — a declared-dead peer is expected
    /// silence, not a deadlock.
    pub links: Vec<StalledLink>,
    /// Workstations with work still queued (crash-injected sites
    /// likewise filtered).
    pub nodes: Vec<StalledNode>,
    /// *Live* nodes the routing fabric can no longer reach: the cut
    /// disconnected the graph. Named so a partition reads as a
    /// partition, not an anonymous wedge.
    pub partition: Vec<NodeId>,
}

impl DeadlockReport {
    /// The stalled links that have been declared dead.
    pub fn dead_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| l.dead)
            .map(|l| l.link)
            .collect()
    }
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "no progress for a full watchdog window (declared at {}, {} units committed):",
            self.at, self.progress
        )?;
        for l in &self.links {
            writeln!(f, "  link {l}")?;
        }
        for n in &self.nodes {
            writeln!(f, "  {n}")?;
        }
        if !self.partition.is_empty() {
            let names: Vec<String> = self
                .partition
                .iter()
                .map(|n| format!("node{}", n.raw()))
                .collect();
            writeln!(
                f,
                "  PARTITION: live nodes unreachable by routing: {}",
                names.join(", ")
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for DeadlockReport {}

/// A running simulated cluster.
///
/// See [`ClusterBuilder`] for construction; the methods here are the
/// "privileged OS" interface experiments use to map pages, install
/// processes and inspect results.
#[derive(Debug)]
pub struct Cluster {
    engine: Engine<ClusterEvent>,
    nodes: Vec<CompId>,
    switches: Vec<CompId>,
    n: u16,
    next_seg_page: Vec<u32>,
    next_index: u64,
    max_seg_page: u32,
    timing: TimingConfig,
    injector: Option<FaultInjector>,
    /// The shared fabric liveness view (present when reliable links with
    /// heartbeats are configured): switches consult it for route-around
    /// tables, the cluster for partition diagnosis.
    view: Option<FabricView>,
}

impl Cluster {
    /// Number of workstations.
    pub fn node_count(&self) -> u16 {
        self.n
    }

    /// Allocates a cluster-wide shared page homed at `home`: mapped into
    /// every node's address space (locally at the home, as a remote window
    /// elsewhere) — the paper's "initialization phase that maps the shared
    /// pages".
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range or the home segment is full.
    pub fn alloc_shared(&mut self, home: u16) -> SharedPage {
        assert!(home < self.n, "home out of range");
        let home_page = self.alloc_frame(home);
        let sp = SharedPage {
            index: self.next_index,
            home: NodeId::new(home),
            home_page,
        };
        self.next_index += 1;
        for i in 0..self.n {
            let vpage = sp.vpage();
            let node = self.node_mut(i);
            let base = if i == home {
                PAddr::local_shared(home_page.base())
            } else {
                PAddr::remote(NodeId::new(home), home_page.base())
            };
            node.mmu_mut().table_mut().map(vpage, base, PageFlags::RW);
            if i != home {
                node.os_mut()
                    .note_remote_mapping(NodeId::new(home), home_page, vpage);
            }
        }
        sp
    }

    fn alloc_frame(&mut self, node: u16) -> PageNum {
        let p = self.next_seg_page[node as usize];
        assert!(p < self.max_seg_page, "segment exhausted on node{node}");
        self.next_seg_page[node as usize] = p + 1;
        PageNum::new(p)
    }

    /// Replicates a shared page coherently onto `copies` (the §2.3 setup):
    /// each copy node gets a local frame bound by the owner-serialized
    /// update protocol.
    ///
    /// # Panics
    ///
    /// Panics if a copy node is the home or out of range.
    pub fn make_coherent(&mut self, sp: &SharedPage, copies: &[u16]) {
        let mut copy_list = Vec::new();
        for &c in copies {
            assert!(c < self.n && NodeId::new(c) != sp.home, "bad copy node");
            let frame = self.alloc_frame(c);
            let node = self.node_mut(c);
            node.mmu_mut().table_mut().map(
                sp.vpage(),
                PAddr::local_shared(frame.base()),
                PageFlags::RW,
            );
            node.hib_mut().shared_map().set_mode(
                frame,
                PageMode::Replica {
                    owner: sp.home,
                    owner_page: sp.home_page,
                },
            );
            copy_list.push((NodeId::new(c), frame));
        }
        let home = self.node_mut(sp.home.raw());
        home.hib_mut()
            .shared_map()
            .set_mode(sp.home_page, PageMode::Owned { copies: copy_list });
    }

    /// Maps a shared page out for eager-update multicast (§2.2.7): every
    /// store by the home lands in each consumer's local frame; consumers
    /// read locally (read-only mapping). Returns each consumer's local
    /// frame so services and audits can inspect the replicated copies
    /// (see [`Cluster::read_local_frame`]).
    ///
    /// # Panics
    ///
    /// Panics if a consumer node is the home or out of range.
    pub fn make_eager(&mut self, sp: &SharedPage, consumers: &[u16]) -> Vec<(NodeId, PageNum)> {
        let mut outs = Vec::new();
        for &c in consumers {
            assert!(c < self.n && NodeId::new(c) != sp.home, "bad consumer");
            let frame = self.alloc_frame(c);
            let node = self.node_mut(c);
            node.mmu_mut().table_mut().map(
                sp.vpage(),
                PAddr::local_shared(frame.base()),
                PageFlags::RO,
            );
            outs.push((NodeId::new(c), frame));
        }
        let home = self.node_mut(sp.home.raw());
        home.hib_mut()
            .shared_map()
            .set_mode(sp.home_page, PageMode::EagerMapped { outs: outs.clone() });
        outs
    }

    /// Converts a shared page to software VSM management (the invalidate
    /// baseline): non-home nodes start unmapped and fault their way to
    /// copies.
    pub fn make_vsm(&mut self, sp: &SharedPage) {
        for i in 0..self.n {
            let frame = if NodeId::new(i) == sp.home {
                sp.home_page
            } else {
                self.alloc_frame(i)
            };
            let node = self.node_mut(i);
            node.os_mut()
                .vsm
                .register(sp.index, sp.vpage(), sp.home, frame);
            if NodeId::new(i) != sp.home {
                node.mmu_mut().table_mut().unmap(sp.vpage());
            }
        }
    }

    /// Configures remote-memory (or disk) paging on `node`: `n_pages`
    /// virtual pages at [`PAGED_VA_BASE`], of which at most `capacity` are
    /// resident. With [`Backing::RemoteMemory`] the backing frames live in
    /// `server`'s segment and pages move over the fabric; with
    /// [`Backing::Disk`] each transfer costs the configured disk latency.
    /// Returns the virtual addresses of the paged pages.
    ///
    /// # Panics
    ///
    /// Panics if the backing server equals the paging node or is out of
    /// range.
    pub fn make_paged(
        &mut self,
        node: u16,
        backing: Backing,
        n_pages: u32,
        capacity: usize,
    ) -> Vec<VAddr> {
        if let Backing::RemoteMemory { server } = backing {
            assert!(server.raw() < self.n, "server out of range");
            assert_ne!(server.raw(), node, "server must be a different node");
        }
        let mut pager = RemotePager::new(backing, capacity);
        let mut vas = Vec::new();
        // Backing frames are allocated on the server (or symbolically for
        // disk); resident frames on the paging node.
        for k in 0..n_pages {
            let vpage = (PAGED_VA_BASE >> tg_wire::PAGE_SHIFT) + u64::from(k);
            let local_frame = self.alloc_frame(node);
            let server_frame = match backing {
                Backing::RemoteMemory { server } => self.alloc_frame(server.raw()),
                Backing::Disk => PageNum::new(k),
            };
            pager.register(vpage, local_frame, server_frame);
            vas.push(VAddr::new(vpage << tg_wire::PAGE_SHIFT));
        }
        self.node_mut(node).os_mut().pager = Some(pager);
        vas
    }

    /// Arms the §2.2.6 access counters for a remote page at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the page's home (counters track *remote* pages).
    pub fn arm_counters(&mut self, node: u16, sp: &SharedPage, reads: u16, writes: u16) {
        assert_ne!(NodeId::new(node), sp.home, "counters are for remote pages");
        let (home, page) = (sp.home, sp.home_page);
        self.node_mut(node)
            .hib_mut()
            .shared_map()
            .arm_counters(home, page, reads, writes);
    }

    /// Reads back a remote page's access counters at `node` — the §2.2.6
    /// monitoring use ("by setting the counters to very large values and
    /// periodically reading them, the system can monitor the page access,
    /// find hot-spots, display statistics"). Returns
    /// `(remaining_reads, remaining_writes)` if armed.
    pub fn read_counters(&mut self, node: u16, sp: &SharedPage) -> Option<(u16, u16)> {
        let (home, page) = (sp.home, sp.home_page);
        self.node_mut(node)
            .hib_mut()
            .shared_map()
            .counters(home, page)
            .map(|c| (c.reads, c.writes))
    }

    /// Installs a process on a node and schedules its start.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_process(&mut self, node: u16, p: impl Process) {
        let comp = self.nodes[node as usize];
        self.node_mut(node).set_process(Box::new(p));
        self.engine
            .schedule(SimTime::ZERO, comp, ClusterEvent::Start);
    }

    /// Adds an additional process to a node (multiprogramming): it gets
    /// its own Telegraphos context + key and is scheduled cooperatively
    /// with the node's other processes, switching on OS-level blocks.
    /// Returns the process index on that node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn add_process(&mut self, node: u16, p: impl Process) -> usize {
        let comp = self.nodes[node as usize];
        let idx = self.node_mut(node).add_process(Box::new(p));
        self.engine
            .schedule(SimTime::ZERO, comp, ClusterEvent::Start);
        idx
    }

    /// Runs until every event drains.
    pub fn run(&mut self) -> RunLimit {
        self.engine.run()
    }

    /// Runs until the given simulated instant.
    pub fn run_until(&mut self, t: SimTime) -> RunLimit {
        self.engine.run_until(t)
    }

    /// Runs at most `n` events (livelock guard for tests).
    pub fn run_events(&mut self, n: u64) -> RunLimit {
        self.engine.run_events(n)
    }

    /// Starts per-board heartbeat origination and failure detection on
    /// every node (requires reliable links built with
    /// [`RelParams::heartbeat_every`] set, the default), with the beacon
    /// cadence and suspicion thresholds taken from `params`. Heartbeats
    /// self-rearm, so a heartbeat-enabled cluster never drains on its
    /// own — drive it with [`Cluster::run_to_quiescence`] (or
    /// [`Cluster::run_until`] plus [`Cluster::stop_heartbeats`]).
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`DetectParams::validate`] (zero periods
    /// or an inverted `peer_timeout <= heartbeat_every`).
    pub fn enable_heartbeats(&mut self, params: DetectParams) {
        if let Err(e) = params.validate() {
            panic!("invalid DetectParams: {e}");
        }
        let peers: Vec<NodeId> = (0..self.n).map(NodeId::new).collect();
        let now = self.engine.now();
        for i in 0..self.n {
            let comp = self.nodes[i as usize];
            let node = self.engine.get_mut::<Node>(comp).expect("node component");
            node.hib_mut().prime_heartbeats(&peers, now, &params);
            if node.hib().heartbeats_active() {
                self.engine.schedule(
                    SimTime::ZERO,
                    comp,
                    ClusterEvent::HibTick(HibTick::Heartbeat),
                );
            }
        }
    }

    /// Stops heartbeat origination everywhere so the event queue can
    /// drain. Detector verdicts already delivered stay in force.
    pub fn stop_heartbeats(&mut self) {
        for i in 0..self.n {
            let comp = self.nodes[i as usize];
            let node = self.engine.get_mut::<Node>(comp).expect("node component");
            node.hib_mut().stop_heartbeats();
        }
    }

    /// Drives a heartbeat-enabled cluster in `step`-sized slices until
    /// the workload completes — every node with processes has halted or
    /// sits inside an active crash window — or `limit` simulated time
    /// passes, then stops heartbeats and drains the residual events.
    ///
    /// Returns [`RunLimit::Drained`] on completion and
    /// [`RunLimit::Deadline`] if the limit cut the run short.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn run_to_quiescence(&mut self, step: SimTime, limit: SimTime) -> RunLimit {
        assert!(!step.is_zero(), "zero quiescence step");
        let mut timed_out = true;
        while self.now() < limit {
            let deadline = (self.now() + step).min(limit);
            self.engine.run_until(deadline);
            if self.workload_done() {
                timed_out = false;
                break;
            }
        }
        self.stop_heartbeats();
        self.engine.run();
        if timed_out && !self.workload_done() {
            RunLimit::Deadline
        } else {
            RunLimit::Drained
        }
    }

    /// True when every node that has processes is either fully halted or
    /// crash-silenced by the fault plan right now.
    fn workload_done(&self) -> bool {
        let now = self.now();
        (0..self.n).all(|i| {
            let node = self.node(i);
            !node.has_process() || node.halted() || self.site_crashed(Site::Node(node.id()), now)
        })
    }

    /// Runs under a no-progress watchdog: committed packets and completed
    /// CPU operations count as progress; a window of `window` simulated
    /// time in which events still fire but nothing commits (e.g. a dead
    /// link retransmitting into the void) stops the run with a
    /// [`DeadlockReport`] naming the stalled links and nodes.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn run_watchdog(&mut self, window: SimTime) -> Result<WatchdogOutcome, DeadlockReport> {
        let meter = ProgressMeter::new();
        for i in 0..self.n {
            self.node_mut(i).set_progress_meter(meter.clone());
        }
        match self.engine.run_watchdog(&meter, window) {
            WatchdogOutcome::Stalled { at, progress } => Err(self.deadlock_report(at, progress)),
            WatchdogOutcome::Drained if !self.all_halted() => {
                // Quiescent but incomplete: a dead link strands its
                // frames and stops its timers, so the queue drains with
                // processes still blocked. That is a deadlock, not a
                // completion.
                let report = self.deadlock_report(self.now(), meter.count());
                if report.links.is_empty() && report.nodes.is_empty() && report.partition.is_empty()
                {
                    Ok(WatchdogOutcome::Drained)
                } else {
                    Err(report)
                }
            }
            outcome => Ok(outcome),
        }
    }

    /// True when `site` sits inside an active crash window: its silence
    /// is injected, not a wedge.
    fn site_crashed(&self, site: Site, at: SimTime) -> bool {
        self.injector
            .as_ref()
            .map(|inj| inj.site_down(site, at))
            .unwrap_or(false)
    }

    fn deadlock_report(&self, at: SimTime, progress: u64) -> DeadlockReport {
        let mut links = Vec::new();
        for &id in &self.switches {
            let sw = self
                .engine
                .get::<tg_net::Switch>(id)
                .expect("switch component");
            links.extend(sw.stalled_links());
        }
        let mut nodes = Vec::new();
        for i in 0..self.n {
            let node = self.node(i);
            if self.site_crashed(Site::Node(node.id()), at) {
                // A crashed workstation's stranded queues are the fault
                // plan at work, not a deadlock.
                continue;
            }
            let hib = node.hib();
            let (tx_queue, rx_fifo) = (node.tx_queue_depth(), node.rx_fifo_depth());
            let (unacked, dead) = (hib.unacked(), hib.link_dead());
            if dead || unacked > 0 || (tx_queue > 0 && hib.tx_credits() == 0) {
                links.push(StalledLink {
                    link: hib.tx_link().unwrap_or_else(|| {
                        LinkId::new(Site::Node(node.id()), Site::Node(node.id()))
                    }),
                    dead,
                    stranded: unacked,
                    credits: hib.tx_credits(),
                    retransmits: hib.retransmits(),
                    attempts: hib.consecutive_attempts(),
                    starved: hib.ack_starved(),
                });
            }
            if tx_queue > 0 || rx_fifo > 0 || unacked > 0 || dead {
                nodes.push(StalledNode {
                    node: node.id(),
                    tx_queue,
                    rx_fifo,
                    unacked,
                    credits: hib.tx_credits(),
                    dead,
                });
            }
        }
        // A stalled link with a crashed endpoint is expected silence.
        links.retain(|l| !self.site_crashed(l.link.from, at) && !self.site_crashed(l.link.to, at));
        // Name live nodes the recomputed routes can no longer reach: a
        // cut that disconnects the graph reads as a partition.
        let mut partition = Vec::new();
        if let Some(view) = self.view.as_ref() {
            for v in view.unreachable() {
                if let Vertex::Node(raw) = v {
                    let id = NodeId::new(raw);
                    if !self.site_crashed(Site::Node(id), at) {
                        partition.push(id);
                    }
                }
            }
            partition.sort_unstable_by_key(|n| n.raw());
        }
        DeadlockReport {
            at,
            progress,
            links,
            nodes,
            partition,
        }
    }

    /// Conservation invariants, checked from component state (meant for
    /// quiescence — after [`Cluster::run`] drains). Two books must
    /// balance:
    ///
    /// * **credits** — per link, credits in hand + unacknowledged frames
    ///   must equal the allowance once FIFOs are empty (a shortfall is a
    ///   leaked credit, an excess a duplicate); while FIFOs still hold
    ///   frames only the excess side is checkable;
    /// * **packets** — frames injected by HIBs must equal frames committed
    ///   plus frames still stranded in retransmit buffers or queues.
    ///
    /// Returns one human-readable line per violation, naming the culprit
    /// link or totals; empty means all books balance.
    pub fn conservation_violations(&self) -> Vec<String> {
        // Crash windows legitimately swallow frames, acks, and credits
        // at the injector boundary, so the strict equalities cannot hold
        // under a crash plan: the credit and reorder books are skipped
        // and the packet book degrades to an upper bound against the
        // injector's loss tallies.
        let crashy = self
            .injector
            .as_ref()
            .map(|inj| !inj.plan().crash_windows().is_empty())
            .unwrap_or(false);
        let mut violations = Vec::new();
        let mut ledgers: Vec<CreditLedger> = Vec::new();
        let mut queued: u64 = 0;
        for &id in &self.switches {
            let sw = self
                .engine
                .get::<tg_net::Switch>(id)
                .expect("switch component");
            ledgers.extend(sw.credit_ledgers());
            queued += sw.fifo_depth_total() as u64;
        }
        let (mut injected, mut committed) = (0u64, 0u64);
        for i in 0..self.n {
            let node = self.node(i);
            ledgers.extend(node.hib().credit_ledger());
            queued += node.rx_fifo_depth() as u64;
            let st = node.hib_stats();
            injected += st.pkts_tx;
            committed += st.committed;
        }
        let drained = queued == 0;
        let mut unacked: u64 = 0;
        for l in &ledgers {
            unacked += l.unacked as u64;
            let overcommit = u64::from(l.credits) + l.unacked as u64 > u64::from(l.allowance);
            if overcommit || (drained && !crashy && !l.balanced()) {
                violations.push(format!("credit leak on {l}"));
            }
        }
        if crashy {
            let lost = self
                .fault_stats()
                .map(|s| s.frames_lost())
                .unwrap_or_default();
            if injected > committed + unacked + queued + lost {
                violations.push(format!(
                    "packet leak: {injected} injected > {committed} committed \
                     + {unacked} unacked + {queued} queued + {lost} crash/fault losses"
                ));
            }
        } else if injected != committed + unacked + queued {
            violations.push(format!(
                "packet leak: {injected} injected != {committed} committed \
                 + {unacked} unacked + {queued} queued"
            ));
        }
        // SACK reorder windows must be empty at quiescence: a parked frame
        // with no pending retransmission means a gap that will never fill.
        // Under a crash plan a survivor may legitimately hold frames
        // parked on a gap whose filler died with the crashed origin.
        if !crashy {
            let mut parked: usize = 0;
            for &id in &self.switches {
                let sw = self
                    .engine
                    .get::<tg_net::Switch>(id)
                    .expect("switch component");
                parked += sw.reorder_depth_total();
            }
            for i in 0..self.n {
                parked += self.node(i).hib().reorder_depth();
            }
            if parked > 0 {
                violations.push(format!(
                    "reorder leak: {parked} frames still parked in SACK windows"
                ));
            }
        }
        violations
    }

    /// Cumulative fault-injection tallies (drops, corruptions, outage
    /// losses, lost credits), when a fault plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// The installed fault plan, when one was given to the builder — the
    /// ground truth crash schedule that trace checkers reconcile
    /// peer-down/peer-up verdicts against.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.injector.as_ref().map(|i| i.plan().clone())
    }

    /// Frames retransmitted across the whole fabric (switch output ports
    /// and HIB transmit ports).
    pub fn fabric_retransmits(&self) -> u64 {
        let sw: u64 = self
            .switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(tg_net::Switch::retransmits)
            .sum();
        sw + (0..self.n)
            .map(|i| self.node(i).hib().retransmits())
            .sum::<u64>()
    }

    /// Completed credit-resync handshakes across the whole fabric.
    pub fn fabric_resyncs(&self) -> u64 {
        let sw: u64 = self
            .switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(tg_net::Switch::resyncs)
            .sum();
        sw + (0..self.n)
            .map(|i| self.node(i).hib().resyncs())
            .sum::<u64>()
    }

    /// Credit-resync probes issued across the whole fabric. Every traced
    /// `CreditResync` event marks either a probe launch or a completed
    /// handshake, so traced events reconcile as probes + resyncs.
    pub fn fabric_resync_probes(&self) -> u64 {
        let sw: u64 = self
            .switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(tg_net::Switch::resync_probes)
            .sum();
        sw + (0..self.n)
            .map(|i| self.node(i).hib().resync_probes())
            .sum::<u64>()
    }

    /// Frames rejected by receive link layers across the whole fabric
    /// (checksum or sequence violations, duplicates). Together with the
    /// injector's drop tallies these account for every traced `Dropped`
    /// event on a fabric without FIFO-overflow errors.
    pub fn fabric_rx_discards(&self) -> u64 {
        let sw: u64 = self
            .switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(tg_net::Switch::rx_discards)
            .sum();
        sw + (0..self.n)
            .map(|i| self.node(i).hib().rx_discards())
            .sum::<u64>()
    }

    /// Wire bytes retransmitted across the whole fabric — the
    /// wire-efficiency cost of loss recovery (go-back-N resends every
    /// in-flight successor of a lost frame; SACK only the missing ones).
    pub fn fabric_retx_bytes(&self) -> u64 {
        let sw: u64 = self
            .switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(tg_net::Switch::retx_bytes)
            .sum();
        sw + (0..self.n)
            .map(|i| self.node(i).hib().retx_bytes())
            .sum::<u64>()
    }

    /// Control frames discarded for a failed checksum across the whole
    /// fabric. Corrupted control frames always arrive (corruption flips
    /// bits, it does not drop), so this total reconciles exactly against
    /// the injector's `ctrl_corrupts` tally.
    pub fn fabric_ctrl_discards(&self) -> u64 {
        let sw: u64 = self
            .switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(tg_net::Switch::ctrl_discards)
            .sum();
        sw + (0..self.n)
            .map(|i| self.node(i).hib().ctrl_discards())
            .sum::<u64>()
    }

    /// Per-directed-link statistics joined from both ends of every hop.
    ///
    /// Each fabric element reports one [`tg_net::PortSnapshot`] per port:
    /// the transmit half of the link it drives plus the receive half of
    /// the reverse hop. This method folds those into one
    /// [`LinkSnapshot`] per directed link, in a deterministic order
    /// (switch ports in fabric order, then node uplinks).
    pub fn link_snapshots(&self) -> Vec<LinkSnapshot> {
        let mut ports = Vec::new();
        for &id in &self.switches {
            let sw = self
                .engine
                .get::<tg_net::Switch>(id)
                .expect("switch component");
            ports.extend(sw.port_snapshots());
        }
        for i in 0..self.n {
            ports.extend(self.node(i).hib().port_snapshot());
        }
        let mut order: Vec<LinkId> = Vec::with_capacity(ports.len());
        let mut index: std::collections::HashMap<LinkId, usize> =
            std::collections::HashMap::with_capacity(ports.len());
        let mut slot =
            |link: LinkId, order: &mut Vec<LinkId>, out: &mut Vec<LinkSnapshot>| -> usize {
                *index.entry(link).or_insert_with(|| {
                    order.push(link);
                    out.push(LinkSnapshot {
                        link,
                        tx_packets: 0,
                        tx_bytes: 0,
                        credits: 0,
                        allowance: 0,
                        credit_stall: SimTime::ZERO,
                        retransmits: 0,
                        retx_bytes: 0,
                        resyncs: 0,
                        resync_probes: 0,
                        rx_fifo_depth: 0,
                        rx_fifo_high_water: 0,
                        rx_discards: 0,
                    });
                    out.len() - 1
                })
            };
        let mut out: Vec<LinkSnapshot> = Vec::with_capacity(ports.len());
        for p in &ports {
            let i = slot(p.link, &mut order, &mut out);
            let s = &mut out[i];
            s.tx_packets = p.tx_packets;
            s.tx_bytes = p.tx_bytes;
            s.credits = p.credits;
            s.allowance = p.allowance;
            s.credit_stall = p.credit_stall;
            s.retransmits = p.retransmits;
            s.retx_bytes = p.retx_bytes;
            s.resyncs = p.resyncs;
            s.resync_probes = p.resync_probes;
            // The receive half of this element belongs to the reverse hop.
            let rev = LinkId::new(p.link.to, p.link.from);
            let j = slot(rev, &mut order, &mut out);
            let r = &mut out[j];
            r.rx_fifo_depth = p.rx_fifo_depth;
            r.rx_fifo_high_water = p.rx_fifo_high_water;
            r.rx_discards = p.rx_discards;
        }
        out
    }

    /// Structured link errors recorded anywhere in the fabric, with the
    /// name of the component that observed each.
    pub fn link_errors(&self) -> Vec<(String, tg_net::LinkError)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for &e in self.node(i).hib().link_errors() {
                out.push((format!("node{i}"), e));
            }
        }
        for (k, &id) in self.switches.iter().enumerate() {
            if let Some(sw) = self.engine.get::<tg_net::Switch>(id) {
                for &e in sw.link_errors() {
                    out.push((format!("switch{k}"), e));
                }
            }
        }
        out
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Event-engine run counters (delivered/scheduled totals, queue
    /// high-water mark, wall time) — the simulator-throughput side of an
    /// experiment. `events_per_wall_second()` on the result reports
    /// simulator speed.
    pub fn engine_stats(&self) -> tg_sim::EngineStats {
        self.engine.stats()
    }

    /// Per-component delivered/scheduled counters plus kind-specific
    /// congestion detail: receive-FIFO high-water marks and credit-stall
    /// time for nodes, traffic and queue state for switches — which parts
    /// of the simulated cluster the event budget went to, and where
    /// back-pressure built up.
    pub fn component_stats(&self) -> Vec<ComponentReport> {
        let per = self.engine.component_stats();
        let mut out = Vec::with_capacity(self.nodes.len() + self.switches.len());
        for &id in &self.nodes {
            let node = self.engine.get::<Node>(id).expect("node component");
            out.push(ComponentReport {
                name: format!("node{}", node.id().raw()),
                events: per[id.index()],
                detail: ComponentDetail::Node {
                    rx_fifo_high_water: node.rx_fifo_high_water(),
                    rx_fifo_depth: node.rx_fifo_depth(),
                    tx_queue_depth: node.tx_queue_depth(),
                    credit_stall: node.credit_stall(),
                },
            });
        }
        for (k, &id) in self.switches.iter().enumerate() {
            let sw = self
                .engine
                .get::<tg_net::Switch>(id)
                .expect("switch component");
            let st = sw.stats();
            out.push(ComponentReport {
                name: format!("switch{k}"),
                events: per[id.index()],
                detail: ComponentDetail::Switch {
                    packets: st.packets,
                    bytes: st.bytes,
                    blocked: st.blocked,
                    fifo_high_water: sw.max_fifo_high_water(),
                    fifo_depth: sw.fifo_depth_total(),
                    credit_stall: sw.credit_stall(),
                },
            });
        }
        out
    }

    /// Installs a packet/operation lifecycle probe on every node (CPU +
    /// HIB) and every switch of the fabric.
    pub fn install_probe(&mut self, probe: SharedProbe) {
        for i in 0..self.n {
            self.node_mut(i).set_probe(probe.clone());
        }
        let switches = self.switches.clone();
        for (k, id) in switches.into_iter().enumerate() {
            self.engine
                .get_mut::<tg_net::Switch>(id)
                .expect("switch component")
                .set_probe(probe.clone(), k as u16);
        }
    }

    /// Enables cluster-wide packet-lifecycle tracing and returns the
    /// collector gathering the events. Convenience wrapper around
    /// [`Cluster::install_probe`] with a [`TraceCollector`].
    pub fn enable_tracing(&mut self) -> TraceCollector {
        let collector = TraceCollector::new();
        self.install_probe(collector.probe());
        collector
    }

    /// Runs the cluster to completion, pausing every `interval` of
    /// simulated time to sample congestion metrics into `metrics`:
    ///
    /// * `fabric.bytes_total` — cumulative bytes switched;
    /// * `fabric.link_utilization` — wire time of the interval's traffic
    ///   over the interval (aggregated across links, so it can exceed 1.0
    ///   on a multi-link fabric);
    /// * `fabric.credit_stall_us` — cumulative credit-stall time summed
    ///   over nodes and switches;
    /// * `node{i}.rx_fifo_depth` / `switch{k}.fifo_depth` — queue depths
    ///   at the sampling instant;
    /// * `link.<a>-<b>.utilization` / `.fifo_depth` / `.stall_us` — the
    ///   same congestion signals per **directed** link hop, under the
    ///   canonical names of [`tg_wire::metric`] (the congestion
    ///   observatory `simreport` renders).
    ///
    /// On completion the registry's gauges hold the final high-water marks
    /// (`node{i}.rx_fifo_high_water`, `switch{k}.fifo_high_water`,
    /// `link.<a>-<b>.fifo_high_water` and `.stall_us`) and its counters
    /// the per-node operation mix (`node{i}.remote_writes`, ...) plus
    /// per-link traffic and reliability totals (`link.<a>-<b>.tx_packets`
    /// / `.tx_bytes` / `.retransmits` / `.resyncs` / `.resync_probes` /
    /// `.rx_discards`; totals as of this run — call once per registry).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn run_sampled(&mut self, interval: SimTime, metrics: &mut MetricsRegistry) -> RunLimit {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        let bytes_series = metrics.series(&metric::fabric_metric("bytes_total"));
        let util_series = metrics.series(&metric::fabric_metric("link_utilization"));
        let stall_series = metrics.series(&metric::fabric_metric("credit_stall_us"));
        let node_depth: Vec<_> = (0..self.n)
            .map(|i| {
                metrics.series(&metric::site_metric(
                    Site::Node(NodeId::new(i)),
                    "rx_fifo_depth",
                ))
            })
            .collect();
        let switch_depth: Vec<_> = (0..self.switches.len())
            .map(|k| metrics.series(&metric::site_metric(Site::Switch(k as u16), "fifo_depth")))
            .collect();
        let links = self.link_snapshots();
        let link_series: Vec<_> = links
            .iter()
            .map(|l| {
                (
                    metrics.series(&metric::link_metric(l.link.from, l.link.to, "utilization")),
                    metrics.series(&metric::link_metric(l.link.from, l.link.to, "fifo_depth")),
                    metrics.series(&metric::link_metric(l.link.from, l.link.to, "stall_us")),
                )
            })
            .collect();
        let mut prev_link_bytes: Vec<u64> = links.iter().map(|l| l.tx_bytes).collect();
        let mut prev_bytes = self.fabric_bytes();
        let limit = loop {
            let target = self.now() + interval;
            let limit = self.engine.run_until(target);
            let at = self.now();
            let bytes = self.fabric_bytes();
            let delta = (bytes - prev_bytes).min(u64::from(u32::MAX)) as u32;
            prev_bytes = bytes;
            metrics.record(bytes_series, at, bytes as f64);
            metrics.record(
                util_series,
                at,
                self.timing.serialize(delta).as_us_f64() / interval.as_us_f64(),
            );
            let mut stall = SimTime::ZERO;
            for report in self.component_stats() {
                match report.detail {
                    ComponentDetail::Node {
                        credit_stall,
                        rx_fifo_depth,
                        ..
                    } => {
                        stall += credit_stall;
                        let i = report.name.trim_start_matches("node");
                        if let Ok(i) = i.parse::<usize>() {
                            metrics.record(node_depth[i], at, rx_fifo_depth as f64);
                        }
                    }
                    ComponentDetail::Switch {
                        credit_stall,
                        fifo_depth,
                        ..
                    } => {
                        stall += credit_stall;
                        let k = report.name.trim_start_matches("switch");
                        if let Ok(k) = k.parse::<usize>() {
                            metrics.record(switch_depth[k], at, fifo_depth as f64);
                        }
                    }
                }
            }
            metrics.record(stall_series, at, stall.as_us_f64());
            for (i, l) in self.link_snapshots().iter().enumerate() {
                let (util_s, depth_s, stall_s) = link_series[i];
                let delta =
                    (l.tx_bytes.saturating_sub(prev_link_bytes[i])).min(u64::from(u32::MAX)) as u32;
                prev_link_bytes[i] = l.tx_bytes;
                metrics.record(
                    util_s,
                    at,
                    self.timing.serialize(delta).as_us_f64() / interval.as_us_f64(),
                );
                metrics.record(depth_s, at, f64::from(l.rx_fifo_depth));
                metrics.record(stall_s, at, l.credit_stall.as_us_f64());
            }
            match limit {
                RunLimit::Deadline => {}
                other => break other,
            }
        };
        // Final high-water gauges and per-node operation-mix counters.
        for report in self.component_stats() {
            match report.detail {
                ComponentDetail::Node {
                    rx_fifo_high_water, ..
                } => {
                    let g = metrics.gauge(&format!("{}.rx_fifo_high_water", report.name));
                    metrics.set_gauge(g, f64::from(rx_fifo_high_water));
                }
                ComponentDetail::Switch {
                    fifo_high_water, ..
                } => {
                    let g = metrics.gauge(&format!("{}.fifo_high_water", report.name));
                    metrics.set_gauge(g, f64::from(fifo_high_water));
                }
            }
        }
        for i in 0..self.n {
            let st = self.node(i).stats();
            let site = Site::Node(NodeId::new(i));
            let mix = [
                (OpKind::RemoteRead, st.remote_reads.count()),
                (OpKind::RemoteWrite, st.remote_writes.count()),
                (OpKind::LocalRead, st.local_reads.count()),
                (OpKind::LocalWrite, st.local_writes.count()),
                (OpKind::Atomic, st.atomics.count()),
                (OpKind::Copy, st.copies.count()),
                (OpKind::Send, st.sends.count()),
                (OpKind::Recv, st.recvs.count()),
            ];
            for (kind, count) in mix {
                let c = metrics.counter(&metric::op_counter(site, kind));
                metrics.inc(c, count);
            }
        }
        // Per-link traffic and reliability totals under the canonical
        // `link.<a>-<b>.<metric>` names.
        for l in self.link_snapshots() {
            let name = |leaf: &str| metric::link_metric(l.link.from, l.link.to, leaf);
            let totals = [
                ("tx_packets", l.tx_packets),
                ("tx_bytes", l.tx_bytes),
                ("retransmits", l.retransmits),
                ("retx_bytes", l.retx_bytes),
                ("resyncs", l.resyncs),
                ("resync_probes", l.resync_probes),
                ("rx_discards", l.rx_discards),
            ];
            for (leaf, count) in totals {
                let c = metrics.counter(&name(leaf));
                metrics.inc(c, count);
            }
            // (Final credit-stall totals live in the `.stall_us` series'
            // last sample; registering a same-named gauge would collide.)
            let g = metrics.gauge(&name("fifo_high_water"));
            metrics.set_gauge(g, f64::from(l.rx_fifo_high_water));
        }
        // Reliability-layer counters (all zero on a lossless fabric).
        let mut rel = vec![
            ("fabric.retransmits", self.fabric_retransmits()),
            ("fabric.retx_bytes", self.fabric_retx_bytes()),
            ("fabric.credit_resyncs", self.fabric_resyncs()),
            ("fabric.credit_resync_probes", self.fabric_resync_probes()),
            ("fabric.rx_discards", self.fabric_rx_discards()),
            ("fabric.ctrl_discards", self.fabric_ctrl_discards()),
            ("fabric.link_errors", self.link_errors().len() as u64),
        ];
        if let Some(fs) = self.fault_stats() {
            rel.push(("fabric.frames_dropped", fs.drops + fs.outage_drops));
            rel.push(("fabric.frames_corrupted", fs.corrupts));
            rel.push(("fabric.credits_lost", fs.credits_lost));
            rel.push(("fabric.ctrl_dropped", fs.ctrl_drops));
            rel.push(("fabric.ctrl_corrupted", fs.ctrl_corrupts));
        }
        for (name, count) in rel {
            let c = metrics.counter(name);
            metrics.inc(c, count);
        }
        limit
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: u16) -> &Node {
        self.engine
            .get::<Node>(self.nodes[i as usize])
            .expect("node component")
    }

    /// Mutable node access (privileged setup).
    pub fn node_mut(&mut self, i: u16) -> &mut Node {
        self.engine
            .get_mut::<Node>(self.nodes[i as usize])
            .expect("node component")
    }

    /// Reads word `word` of a shared page at its home (ground truth).
    pub fn read_shared(&self, sp: &SharedPage, word: u64) -> u64 {
        self.node(sp.home.raw())
            .segment_read(GOffset::from_page(sp.home_page, word * 8))
    }

    /// Writes word `word` of a shared page at its home — privileged
    /// initialization (service directories, seeded data sets) that
    /// bypasses the fabric, for use before a run starts.
    pub fn write_shared(&mut self, sp: &SharedPage, word: u64, val: u64) {
        self.node_mut(sp.home.raw())
            .segment_write(GOffset::from_page(sp.home_page, word * 8), val);
    }

    /// Reads word `word` of the frame backing `sp` at `node` (the local
    /// copy under coherent replication or VSM).
    pub fn read_local_frame(&self, node: u16, frame: PageNum, word: u64) -> u64 {
        self.node(node)
            .segment_read(GOffset::from_page(frame, word * 8))
    }

    /// True when every node with a process has halted.
    pub fn all_halted(&self) -> bool {
        (0..self.n).all(|i| {
            let node = self.node(i);
            !node.has_process() || node.stats().halted_at.is_some()
        })
    }

    /// Total bytes switched through the fabric.
    pub fn fabric_bytes(&self) -> u64 {
        self.switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(|s| s.stats().bytes)
            .sum()
    }

    /// A formatted per-node operation summary — handy at the end of
    /// examples and experiments.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<6} {:>7} {:>9} {:>7} {:>9} {:>8} {:>7} {:>7}",
            "node", "rd-rem", "rd-rem us", "wr-rem", "wr-rem us", "atomics", "faults", "repl"
        );
        for i in 0..self.n {
            let st = self.node(i).stats();
            let _ = writeln!(
                s,
                "{:<6} {:>7} {:>9.2} {:>7} {:>9.2} {:>8} {:>7} {:>7}",
                format!("n{i}"),
                st.remote_reads.count(),
                st.remote_reads.mean(),
                st.remote_writes.count(),
                st.remote_writes.mean(),
                st.atomics.count(),
                st.faults,
                st.replications,
            );
        }
        let _ = writeln!(
            s,
            "fabric: {} packets / {} bytes; simulated time {}",
            self.fabric_packets(),
            self.fabric_bytes(),
            self.now()
        );
        s
    }

    /// Total packets switched through the fabric.
    pub fn fabric_packets(&self) -> u64 {
        self.switches
            .iter()
            .filter_map(|&s| self.engine.get::<tg_net::Switch>(s))
            .map(|s| s.stats().packets)
            .sum()
    }
}
