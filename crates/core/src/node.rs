//! The workstation component: CPU, MMU, private memory, shared segment,
//! HIB, and the OS layer, driven by the cluster event loop.
//!
//! # Multiprogramming model
//!
//! A node runs one or more processes ("threads" of the single simulated
//! CPU). Scheduling is faithful to the paper's hardware:
//!
//! * **Hardware-blocking operations freeze the CPU.** An uncached Alpha
//!   load (remote read, GO register) stalls the processor on the
//!   TurboChannel — no other process can run until it completes. The same
//!   holds for back-pressured stores and the FENCE.
//! * **OS-level blocks switch processes.** A blocking message receive, a
//!   VSM page fault, or a pager fault traps into the OS, which dispatches
//!   another ready process — this is where Telegraphos' *contexts with
//!   keys* (§2.2.4–2.2.5) earn their keep: each process launches special
//!   operations through its own context, and nothing is saved or restored
//!   at the HIB across switches.
//! * **Action boundaries are scheduling points** (cooperative round-robin
//!   among ready processes); launch micro-sequences are uninterruptible,
//!   standing in for the PAL-code guarantee of Telegraphos I.

use std::collections::VecDeque;

use tg_hib::regs::{opcode, reg, ShadowArg};
use tg_hib::{
    CpuResult, Hib, HibConfig, HibHost, HibInterrupt, HibTick, LaunchMode, LoadOutcome,
    StoreOutcome,
};
use tg_mem::{AccessKind, Decoded, Fault, Mmu, PAddr, PhysMem, VAddr};
use tg_net::NetEvent;
use tg_sim::{CompId, Component, Ctx, SimTime};
use tg_wire::trace::{OpEvent, SharedProbe, TraceId};
use tg_wire::{GOffset, NodeId, TimingConfig, WireMsg};

use crate::event::ClusterEvent;
use crate::os::{task, Os, OsEffect};
use crate::pager::{PagerEffect, RemotePager, PAGER_TAG_BASE};
use crate::process::{Action, Process, Resume};
use crate::stats::{NodeStats, OpClass};
use crate::vsm::VsmEffect;

/// Micro-instructions of a special-operation launch sequence (§2.2.4).
#[derive(Clone, Copy, Debug)]
enum MicroOp {
    /// Uncached store to a HIB register.
    RegStore(u64, u64),
    /// Store latched by the HIB (special-mode argument or shadow store).
    RawStore(PAddr, u64),
    /// The GO load that fires the operation and collects the result.
    Go(u64),
}

/// A resume waiting to be delivered, with the CPU time still to charge
/// before delivery.
#[derive(Clone, Copy, Debug)]
struct SavedResume {
    r: Resume,
    cost: SimTime,
}

#[derive(Debug)]
enum ThreadState {
    /// In the ready queue, waiting for the CPU.
    Queued(SavedResume),
    /// Currently mid-action (the chain is executing on its behalf).
    Running,
    /// Mid launch micro-sequence (uninterruptible).
    MicroSeq(VecDeque<MicroOp>),
    /// The CPU is frozen on this thread's hardware operation.
    Frozen,
    /// Blocked in the OS on a message receive.
    WaitRecv(u32),
    /// Blocked in the OS on a page fault (VSM or pager).
    WaitFault,
    /// Waiting for the node's single fault slot to free.
    WaitFaultSlot(Action),
    /// Finished.
    Halted,
}

#[derive(Debug)]
struct Thread {
    proc: Box<dyn Process>,
    state: ThreadState,
    cur_start: SimTime,
    cur_class: OpClass,
    /// Trace id of the request packet the current operation injected, for
    /// linking the CPU-level [`OpEvent`] to the packet lifecycle.
    cur_trace: Option<TraceId>,
    /// Telegraphos context id + key (Telegraphos II launch).
    ctx: (u16, u32),
}

impl std::fmt::Debug for Box<dyn Process> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<process>")
    }
}

/// One simulated workstation: the component registered with the engine.
///
/// Created by [`ClusterBuilder`](crate::ClusterBuilder); not normally
/// constructed directly.
pub struct Node {
    id: NodeId,
    name: String,
    timing: TimingConfig,
    launch_mode: LaunchMode,
    mmu: Mmu,
    private: PhysMem,
    segment: PhysMem,
    hib: Hib,
    os: Os,
    threads: Vec<Thread>,
    /// Ready-queue of thread indices (round-robin).
    rq: VecDeque<usize>,
    /// True while a `CpuStep` is scheduled.
    step_scheduled: bool,
    /// Thread the CPU is frozen on (hardware-blocking op in flight).
    frozen: Option<usize>,
    /// Thread mid launch micro-sequence.
    micro_thread: Option<usize>,
    /// Thread whose OS fault is in progress, with the action to retry.
    fault_thread: Option<(usize, Action)>,
    /// VSM DONE notifications held back until the faulted access has been
    /// retried — otherwise the manager could grant a racing invalidation
    /// into the retry window and livelock the page (ping-pong before any
    /// instruction completes).
    deferred_os_sends: Vec<(NodeId, WireMsg)>,
    stats: NodeStats,
    outbox: Vec<(SimTime, Option<CompId>, ClusterEvent)>,
    /// Engine time of the event being handled, mirrored into the HIB host
    /// shim so the HIB can timestamp observability events.
    now: SimTime,
    /// Operation-lifecycle probe; `None` (the default) costs one branch
    /// per completed operation.
    probe: Option<SharedProbe>,
    /// Watchdog progress meter, ticked on every completed CPU operation.
    meter: Option<tg_sim::ProgressMeter>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("threads", &self.threads.len())
            .field("frozen", &self.frozen)
            .finish_non_exhaustive()
    }
}

/// Host shim: buffers HIB requests for the node to drain into the engine.
struct Shim<'a> {
    segment: &'a mut PhysMem,
    out: &'a mut Vec<(SimTime, Option<CompId>, ClusterEvent)>,
    now: SimTime,
}

impl HibHost for Shim<'_> {
    fn schedule_net(&mut self, delay: SimTime, dst: CompId, ev: NetEvent) {
        self.out.push((delay, Some(dst), ClusterEvent::Net(ev)));
    }
    fn schedule_tick(&mut self, delay: SimTime, tick: HibTick) {
        self.out.push((delay, None, ClusterEvent::HibTick(tick)));
    }
    fn cpu_complete(&mut self, delay: SimTime, res: CpuResult) {
        self.out.push((delay, None, ClusterEvent::HibDone(res)));
    }
    fn interrupt(&mut self, delay: SimTime, int: HibInterrupt) {
        self.out.push((delay, None, ClusterEvent::Interrupt(int)));
    }
    fn to_os(&mut self, delay: SimTime, src: NodeId, msg: WireMsg) {
        self.out
            .push((delay, None, ClusterEvent::OsMsg { src, msg }));
    }
    fn segment(&mut self) -> &mut PhysMem {
        self.segment
    }
    fn now(&self) -> SimTime {
        self.now
    }
}

/// Delay for looping an OS message back to ourselves (local trap handling).
const OS_LOOPBACK: SimTime = SimTime::from_ns(500);
/// DMA burst size for the messaging baseline.
const DMA_BURST: u32 = 1024;
/// Tag namespace for pager eviction pushes (`tag = PUSH | server frame`).
const PAGER_PUSH_TAG: u32 = 0x1000_0000;

impl Node {
    /// Creates a workstation node (cluster-builder internal).
    pub(crate) fn new(id: NodeId, timing: TimingConfig, hib_config: HibConfig, os: Os) -> Self {
        let launch_mode = hib_config.launch_mode;
        let hib = Hib::new(id, hib_config, timing.clone());
        Node {
            id,
            name: format!("node{}", id.raw()),
            timing,
            launch_mode,
            mmu: Mmu::new(),
            private: PhysMem::new(),
            segment: PhysMem::new(),
            hib,
            os,
            threads: Vec::new(),
            rq: VecDeque::new(),
            step_scheduled: false,
            frozen: None,
            micro_thread: None,
            fault_thread: None,
            deferred_os_sends: Vec::new(),
            stats: NodeStats::default(),
            outbox: Vec::new(),
            now: SimTime::ZERO,
            probe: None,
            meter: None,
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Installs a process (run from the engine's `Start` event).
    /// Equivalent to [`Node::add_process`]; kept for the common
    /// one-process-per-workstation case.
    pub fn set_process(&mut self, p: Box<dyn Process>) {
        self.add_process(p);
    }

    /// Adds a process to this workstation. Each process receives its own
    /// Telegraphos context and key (§2.2.4); processes are scheduled
    /// cooperatively, switching on OS-level blocks.
    pub fn add_process(&mut self, p: Box<dyn Process>) -> usize {
        let idx = self.threads.len();
        let key = 0x5EED_0000 | (u32::from(self.id.raw()) << 8) | idx as u32;
        if self.launch_mode == LaunchMode::ContextShadow {
            self.hib.install_context_key(idx, key);
        }
        self.threads.push(Thread {
            proc: p,
            state: ThreadState::Queued(SavedResume {
                r: Resume::Start,
                cost: SimTime::ZERO,
            }),
            cur_start: SimTime::ZERO,
            cur_class: OpClass::Compute,
            cur_trace: None,
            ctx: (idx as u16, key),
        });
        idx
    }

    /// The node's MMU (cluster-builder mapping operations).
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// The node's HIB (cluster-builder driver operations).
    pub fn hib_mut(&mut self) -> &mut Hib {
        &mut self.hib
    }

    /// The node's HIB (link-state inspection).
    pub fn hib(&self) -> &Hib {
        &self.hib
    }

    /// Installs a watchdog progress meter on this node and its HIB: the
    /// CPU ticks it on every completed operation, the HIB on every
    /// committed packet.
    pub fn set_progress_meter(&mut self, meter: tg_sim::ProgressMeter) {
        self.hib.set_progress_meter(meter.clone());
        self.meter = Some(meter);
    }

    /// HIB statistics.
    pub fn hib_stats(&self) -> tg_hib::HibStats {
        self.hib.stats()
    }

    /// Installs a packet/operation lifecycle probe on this node and its
    /// HIB. Without one, every hook is a single `None` branch.
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.hib.set_probe(probe.clone());
        self.probe = Some(probe);
    }

    /// Deepest occupancy the HIB's receive FIFO has reached.
    pub fn rx_fifo_high_water(&self) -> u32 {
        self.hib.rx_fifo_high_water()
    }

    /// Packets currently queued in the HIB's receive FIFO.
    pub fn rx_fifo_depth(&self) -> usize {
        self.hib.rx_fifo_depth()
    }

    /// Packets currently queued for transmission at the HIB.
    pub fn tx_queue_depth(&self) -> usize {
        self.hib.tx_queue_depth()
    }

    /// Total simulated time the HIB's transmit port spent blocked on
    /// credits (link back-pressure).
    pub fn credit_stall(&self) -> SimTime {
        self.hib.credit_stall()
    }

    /// The HIB's pending-write CAM (experiment E7).
    pub fn cam(&self) -> &tg_proto::PendingCam {
        self.hib.cam()
    }

    /// CPU-side statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The OS layer (cluster-builder configuration).
    pub fn os_mut(&mut self) -> &mut Os {
        &mut self.os
    }

    /// Reads a word of the exported shared segment (inspection).
    pub fn segment_read(&self, off: GOffset) -> u64 {
        self.segment.read(off)
    }

    /// Writes a word of the exported shared segment (test setup).
    pub fn segment_write(&mut self, off: GOffset, val: u64) {
        self.segment.write(off, val);
    }

    /// Reads a word of private memory (inspection).
    pub fn private_read(&self, off: u64) -> u64 {
        self.private.read(GOffset::new(off))
    }

    /// True if at least one process was installed on this node.
    pub fn has_process(&self) -> bool {
        !self.threads.is_empty()
    }

    /// Number of processes on this node.
    pub fn process_count(&self) -> usize {
        self.threads.len()
    }

    /// True when every installed process has halted.
    pub fn halted(&self) -> bool {
        self.has_process()
            && self
                .threads
                .iter()
                .all(|t| matches!(t.state, ThreadState::Halted))
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    fn schedule_self(&mut self, delay: SimTime, ev: ClusterEvent) {
        self.outbox.push((delay, None, ev));
    }

    /// Ensures exactly one `CpuStep` is pending (unless the CPU is frozen
    /// or mid micro-sequence, whose steps are scheduled explicitly).
    fn kick(&mut self, delay: SimTime) {
        if self.step_scheduled || self.frozen.is_some() || self.micro_thread.is_some() {
            return;
        }
        if self.rq.is_empty() {
            return;
        }
        self.step_scheduled = true;
        self.schedule_self(delay, ClusterEvent::CpuStep);
    }

    /// Schedules the next micro-sequence step (bypasses the ready queue).
    fn kick_micro(&mut self, delay: SimTime) {
        debug_assert!(self.micro_thread.is_some());
        debug_assert!(!self.step_scheduled);
        self.step_scheduled = true;
        self.schedule_self(delay, ClusterEvent::CpuStep);
    }

    /// Queues `r` for delivery to thread `i` after charging `cost`.
    fn requeue(&mut self, i: usize, r: Resume, cost: SimTime) {
        self.threads[i].state = ThreadState::Queued(SavedResume { r, cost });
        self.rq.push_back(i);
    }

    fn step_cpu(&mut self, now: SimTime) {
        self.step_scheduled = false;
        if let Some(m) = self.micro_thread {
            self.step_micro(m, now);
            return;
        }
        let Some(i) = self.rq.pop_front() else {
            return; // CPU idles; the next unblock kicks the chain.
        };
        let saved = match std::mem::replace(&mut self.threads[i].state, ThreadState::Running) {
            ThreadState::Queued(s) => s,
            other => unreachable!("queued thread in state {other:?}"),
        };
        if !saved.cost.is_zero() {
            // Charge the CPU time, then deliver (thread stays at the front).
            self.threads[i].state = ThreadState::Queued(SavedResume {
                r: saved.r,
                cost: SimTime::ZERO,
            });
            self.rq.push_front(i);
            self.step_scheduled = true;
            self.schedule_self(saved.cost, ClusterEvent::CpuStep);
            return;
        }
        if !matches!(saved.r, Resume::Start) {
            let (class, start) = (self.threads[i].cur_class, self.threads[i].cur_start);
            self.stats.record(class, now - start);
            if let Some(meter) = self.meter.as_ref() {
                meter.tick();
            }
            if let Some(probe) = self.probe.as_ref() {
                if let Some(kind) = class.op_kind() {
                    probe.op(OpEvent {
                        node: self.id,
                        kind,
                        start,
                        end: now,
                        trace: self.threads[i].cur_trace.take(),
                    });
                }
            }
        }
        let action = self.threads[i].proc.resume_at(saved.r, now);
        self.dispatch(i, action, now, true);
    }

    fn dispatch(&mut self, i: usize, action: Action, now: SimTime, fresh: bool) {
        if fresh {
            self.threads[i].cur_start = now;
            self.threads[i].cur_trace = None;
        }
        match action {
            Action::Halt => {
                self.threads[i].state = ThreadState::Halted;
                if self.halted() {
                    self.stats.halted_at = Some(now);
                }
                self.kick(SimTime::ZERO);
            }
            Action::Compute(d) => {
                self.threads[i].cur_class = OpClass::Compute;
                self.requeue(i, Resume::Done, d);
                self.kick(SimTime::ZERO);
            }
            Action::Read(va) => self.do_read(i, va, action),
            Action::Write(va, val) => self.do_write(i, va, val, action),
            Action::FetchStore(va, v) => {
                self.launch_atomic(i, opcode::FETCH_STORE, va, v, 0, action)
            }
            Action::FetchAdd(va, v) => self.launch_atomic(i, opcode::FETCH_INC, va, v, 0, action),
            Action::CompareSwap(va, expect, new) => {
                self.launch_atomic(i, opcode::COMPARE_SWAP, va, expect, new, action)
            }
            Action::Copy { from, to, words } => self.launch_copy(i, from, to, words, action),
            Action::Fence => {
                self.threads[i].cur_class = OpClass::Fence;
                if self.hib.fence() {
                    self.requeue(i, Resume::Done, self.timing.tc_write_latch);
                    self.kick(SimTime::ZERO);
                } else {
                    self.freeze(i);
                }
            }
            Action::Send { dst, bytes, tag } => self.do_send(i, dst, bytes, tag),
            Action::Recv { tag } => self.do_recv(i, tag),
        }
    }

    /// The CPU stalls on a hardware operation: nothing runs until the HIB
    /// completes it.
    fn freeze(&mut self, i: usize) {
        debug_assert!(self.frozen.is_none(), "CPU already frozen");
        self.threads[i].state = ThreadState::Frozen;
        self.frozen = Some(i);
    }

    fn unfreeze(&mut self, r: Resume, cost: SimTime) {
        let i = self.frozen.take().expect("completion without a frozen op");
        debug_assert!(matches!(self.threads[i].state, ThreadState::Frozen));
        self.requeue(i, r, cost);
        self.kick(SimTime::ZERO);
    }

    // ------------------------------------------------------------------
    // Action execution
    // ------------------------------------------------------------------

    fn translate(
        &mut self,
        i: usize,
        va: VAddr,
        kind: AccessKind,
        action: Action,
    ) -> Option<PAddr> {
        match self.mmu.translate(va, kind) {
            Ok(pa) => Some(pa),
            Err(fault) => {
                self.take_fault(i, va, fault, action);
                None
            }
        }
    }

    fn take_fault(&mut self, i: usize, va: VAddr, fault: Fault, action: Action) {
        let vpage = va.vpage();
        // The access kind that must be granted on retry follows from the
        // faulting action, not from the fault variant.
        let write = matches!(
            action,
            Action::Write(..)
                | Action::FetchStore(..)
                | Action::FetchAdd(..)
                | Action::CompareSwap(..)
                | Action::Copy { .. }
        );
        let managed = self.os.vsm.manages(vpage) || self.os.pager_manages(vpage);
        if !managed {
            panic!("{}: unhandled {fault} during {action:?}", self.name);
        }
        self.stats.faults += 1;
        if self.fault_thread.is_some() {
            // One OS fault at a time; this thread waits for the slot.
            self.threads[i].state = ThreadState::WaitFaultSlot(action);
            self.kick(SimTime::ZERO);
            return;
        }
        self.fault_thread = Some((i, action));
        self.threads[i].state = ThreadState::WaitFault;
        let kind_task = if self.os.vsm.manages(vpage) {
            task::VSM_FAULT
        } else {
            task::PAGER_FAULT
        };
        self.schedule_self(
            self.timing.os_trap,
            ClusterEvent::OsTask {
                kind: kind_task,
                a: vpage,
                b: u64::from(write),
            },
        );
        // The OS switches to another ready process while the fault is
        // serviced.
        self.kick(SimTime::ZERO);
    }

    fn do_read(&mut self, i: usize, va: VAddr, action: Action) {
        let Some(pa) = self.translate(i, va, AccessKind::Read, action) else {
            return;
        };
        match pa.decode() {
            Decoded::Private { off } => {
                self.threads[i].cur_class = OpClass::Private;
                let v = self.private.read(GOffset::new(off));
                self.requeue(i, Resume::Value(v), self.timing.local_mem_access);
                self.kick(SimTime::ZERO);
            }
            Decoded::Remote { node, .. } if node != self.id => {
                self.threads[i].cur_class = OpClass::RemoteRead;
                match self.with_hib_traced(i, |hib, shim| hib.cpu_load(pa, shim)) {
                    LoadOutcome::Pending => self.freeze(i),
                    LoadOutcome::Ready(v) => {
                        self.requeue(i, Resume::Value(v), self.timing.tc_read_overhead);
                        self.kick(SimTime::ZERO);
                    }
                    LoadOutcome::Fault(f) => panic!("{}: read fault {f}", self.name),
                }
            }
            _ => {
                self.threads[i].cur_class = OpClass::LocalRead;
                self.os.pager_touch(va.vpage());
                match self.with_hib(|hib, shim| hib.cpu_load(pa, shim)) {
                    LoadOutcome::Ready(v) => {
                        self.requeue(i, Resume::Value(v), self.timing.tc_local_shared_read);
                        self.kick(SimTime::ZERO);
                    }
                    other => panic!("{}: local read came back {other:?}", self.name),
                }
            }
        }
    }

    fn do_write(&mut self, i: usize, va: VAddr, val: u64, action: Action) {
        let Some(pa) = self.translate(i, va, AccessKind::Write, action) else {
            return;
        };
        match pa.decode() {
            Decoded::Private { off } => {
                self.threads[i].cur_class = OpClass::Private;
                self.private.write(GOffset::new(off), val);
                self.requeue(i, Resume::Done, self.timing.local_mem_access);
                self.kick(SimTime::ZERO);
            }
            region => {
                self.threads[i].cur_class = match region {
                    Decoded::Remote { node, .. } if node != self.id => OpClass::RemoteWrite,
                    _ => OpClass::LocalWrite,
                };
                if matches!(self.threads[i].cur_class, OpClass::LocalWrite) {
                    self.os.pager_touch(va.vpage());
                }
                match self.with_hib_traced(i, |hib, shim| hib.cpu_store(pa, val, shim)) {
                    StoreOutcome::Done => {
                        self.requeue(i, Resume::Done, self.timing.tc_write_latch);
                        self.kick(SimTime::ZERO);
                    }
                    StoreOutcome::Stalled => self.freeze(i),
                    StoreOutcome::Fault(f) => panic!("{}: write fault {f}", self.name),
                }
            }
        }
    }

    fn launch_atomic(&mut self, i: usize, op: u64, va: VAddr, d0: u64, d1: u64, action: Action) {
        let Some(target) = self.translate(i, va, AccessKind::Write, action) else {
            return;
        };
        self.threads[i].cur_class = OpClass::Atomic;
        let mut ops = VecDeque::new();
        let mut pre = SimTime::ZERO;
        match self.launch_mode {
            LaunchMode::SpecialModePal => {
                pre += self.timing.pal_entry;
                ops.push_back(MicroOp::RegStore(reg::SPECIAL_MODE, op));
                ops.push_back(MicroOp::RawStore(target, d0));
                if op == opcode::COMPARE_SWAP {
                    ops.push_back(MicroOp::RawStore(target, d1));
                }
                ops.push_back(MicroOp::Go(reg::GO));
            }
            LaunchMode::ContextShadow => {
                let (ctx, key) = self.threads[i].ctx;
                let base = reg::CTX_BASE + u64::from(ctx) * reg::CTX_STRIDE;
                ops.push_back(MicroOp::RegStore(base + reg::SLOT_OP * 8, op));
                ops.push_back(MicroOp::RegStore(base + reg::SLOT_DATUM0 * 8, d0));
                if op == opcode::COMPARE_SWAP {
                    ops.push_back(MicroOp::RegStore(base + reg::SLOT_DATUM1 * 8, d1));
                }
                let arg = ShadowArg { ctx, key, slot: 0 };
                ops.push_back(MicroOp::RawStore(target.shadow(), arg.encode()));
                ops.push_back(MicroOp::Go(base + reg::SLOT_GO * 8));
            }
        }
        self.threads[i].state = ThreadState::MicroSeq(ops);
        self.micro_thread = Some(i);
        self.kick_micro(pre);
    }

    fn launch_copy(&mut self, i: usize, from: VAddr, to: VAddr, words: u32, action: Action) {
        let Some(src) = self.translate(i, from, AccessKind::Read, action) else {
            return;
        };
        let Some(dst) = self.translate(i, to, AccessKind::Write, action) else {
            return;
        };
        self.threads[i].cur_class = OpClass::Copy;
        let mut ops = VecDeque::new();
        let mut pre = SimTime::ZERO;
        match self.launch_mode {
            LaunchMode::SpecialModePal => {
                pre += self.timing.pal_entry;
                ops.push_back(MicroOp::RegStore(reg::SPECIAL_MODE, opcode::COPY));
                ops.push_back(MicroOp::RawStore(src, u64::from(words)));
                ops.push_back(MicroOp::RawStore(dst, 0));
                ops.push_back(MicroOp::Go(reg::GO));
            }
            LaunchMode::ContextShadow => {
                let (ctx, key) = self.threads[i].ctx;
                let base = reg::CTX_BASE + u64::from(ctx) * reg::CTX_STRIDE;
                ops.push_back(MicroOp::RegStore(base + reg::SLOT_OP * 8, opcode::COPY));
                ops.push_back(MicroOp::RegStore(
                    base + reg::SLOT_DATUM0 * 8,
                    u64::from(words),
                ));
                let a0 = ShadowArg { ctx, key, slot: 0 };
                let a1 = ShadowArg { ctx, key, slot: 1 };
                ops.push_back(MicroOp::RawStore(src.shadow(), a0.encode()));
                ops.push_back(MicroOp::RawStore(dst.shadow(), a1.encode()));
                ops.push_back(MicroOp::Go(base + reg::SLOT_GO * 8));
            }
        }
        self.threads[i].state = ThreadState::MicroSeq(ops);
        self.micro_thread = Some(i);
        self.kick_micro(pre);
    }

    fn step_micro(&mut self, i: usize, _now: SimTime) {
        let op = match &mut self.threads[i].state {
            ThreadState::MicroSeq(ops) => ops.pop_front().expect("non-empty micro sequence"),
            other => unreachable!("micro thread in state {other:?}"),
        };
        match op {
            MicroOp::RegStore(r, val) => {
                let pa = PAddr::hib_reg(r);
                match self.with_hib(|hib, shim| hib.cpu_store(pa, val, shim)) {
                    StoreOutcome::Done => {}
                    other => panic!("{}: register store failed: {other:?}", self.name),
                }
                self.kick_micro(self.timing.tc_write_latch);
            }
            MicroOp::RawStore(pa, val) => {
                match self.with_hib(|hib, shim| hib.cpu_store(pa, val, shim)) {
                    StoreOutcome::Done => {}
                    other => panic!("{}: launch-argument store failed: {other:?}", self.name),
                }
                self.kick_micro(self.timing.tc_write_latch);
            }
            MicroOp::Go(r) => {
                self.micro_thread = None;
                let pa = PAddr::hib_reg(r);
                match self.with_hib_traced(i, |hib, shim| hib.cpu_load(pa, shim)) {
                    LoadOutcome::Pending => self.freeze(i),
                    LoadOutcome::Ready(v) => {
                        let resume = self.finish_value(i, v);
                        self.requeue(i, resume, self.timing.tc_local_shared_read);
                        self.kick(SimTime::ZERO);
                    }
                    LoadOutcome::Fault(f) => panic!("{}: launch failed: {f}", self.name),
                }
            }
        }
    }

    /// Copies resume with `Done` (non-blocking); atomics with the value.
    fn finish_value(&mut self, i: usize, v: u64) -> Resume {
        if self.threads[i].cur_class == OpClass::Copy {
            Resume::Done
        } else {
            Resume::Value(v)
        }
    }

    fn do_send(&mut self, i: usize, dst: NodeId, bytes: u32, tag: u32) {
        self.threads[i].cur_class = OpClass::Send;
        let cost = self.timing.os_trap + self.timing.copy_cost(u64::from(bytes));
        if dst == self.id {
            // Local loopback message.
            self.schedule_self(
                cost + OS_LOOPBACK,
                ClusterEvent::OsMsg {
                    src: self.id,
                    msg: WireMsg::DmaData {
                        tag,
                        nbytes: bytes,
                        last: true,
                    },
                },
            );
        } else {
            let mut sent = 0;
            while sent < bytes {
                let n = DMA_BURST.min(bytes - sent);
                let last = sent + n >= bytes;
                let accepted = self.with_hib_traced(i, |hib, shim| {
                    hib.send_os_message(
                        dst,
                        WireMsg::DmaData {
                            tag,
                            nbytes: n,
                            last,
                        },
                        shim,
                    )
                });
                if !accepted {
                    // The destination is already convicted: fail the send
                    // at issue time instead of streaming DMA bursts into a
                    // dead link's retry budget.
                    self.stats.op_failures += 1;
                    self.requeue(
                        i,
                        Resume::Failed(tg_hib::OpError::PeerUnreachable { peer: dst }),
                        cost,
                    );
                    self.kick(SimTime::ZERO);
                    return;
                }
                sent += n;
            }
        }
        self.requeue(i, Resume::Done, cost);
        self.kick(SimTime::ZERO);
    }

    fn do_recv(&mut self, i: usize, tag: u32) {
        self.threads[i].cur_class = OpClass::Recv;
        if let Some(bytes) = self.os.take_message(tag) {
            let cost = self.timing.os_trap + self.timing.copy_cost(bytes);
            self.requeue(i, Resume::Value(bytes), cost);
        } else {
            // OS-level block: the scheduler runs another process.
            self.threads[i].state = ThreadState::WaitRecv(tag);
        }
        self.kick(SimTime::ZERO);
    }

    // ------------------------------------------------------------------
    // Completions, interrupts, OS
    // ------------------------------------------------------------------

    fn on_hib_done(&mut self, res: CpuResult) {
        match res {
            CpuResult::LoadDone { val } => {
                self.unfreeze(Resume::Value(val), self.timing.tc_read_overhead)
            }
            CpuResult::LaunchDone { result } => {
                let i = *self.frozen.as_ref().expect("frozen launch");
                let r = self.finish_value(i, result);
                self.unfreeze(r, self.timing.tc_read_overhead);
            }
            CpuResult::StoreRetired => self.unfreeze(Resume::Done, SimTime::ZERO),
            CpuResult::FenceDone => self.unfreeze(Resume::Done, SimTime::ZERO),
            CpuResult::OpFailed { err } => {
                // A blocking remote operation resolved structurally (its
                // destination was convicted dead) instead of completing:
                // release the CPU with the failure, never stall forever.
                self.stats.op_failures += 1;
                self.unfreeze(Resume::Failed(err), self.timing.tc_read_overhead);
            }
        }
    }

    fn on_interrupt(&mut self, int: HibInterrupt) {
        match int {
            HibInterrupt::PageAlarm { node, page, .. } => {
                if self.os.wants_replication(node, page) {
                    self.schedule_self(
                        self.timing.os_trap,
                        ClusterEvent::OsTask {
                            kind: task::REPLICATE,
                            a: u64::from(node.raw()),
                            b: u64::from(page.raw()),
                        },
                    );
                }
            }
            HibInterrupt::Protection => {
                self.stats.protection_faults += 1;
            }
            HibInterrupt::LinkFault { .. } => {
                // The OS records the degradation; recovery (or the
                // watchdog's deadlock report) is the cluster's business.
                self.stats.link_failures += 1;
            }
            HibInterrupt::LinkStarved { .. } => {
                // The ack-starvation watchdog warns before the link dies;
                // the OS just records the episode (the deadlock report
                // names starved links if the fabric wedges for real).
                self.stats.link_starvations += 1;
            }
            HibInterrupt::PeerDown { peer } => {
                // Crash-stop conviction: fail over VSM ownership and any
                // fault in flight toward the dead node, and release a
                // pager fetch bound for a dead memory server.
                self.stats.peer_downs += 1;
                let fx = self.os.vsm.on_peer_down(peer);
                self.apply_vsm_effects(fx);
                let failed = self.os.pager.as_mut().and_then(|p| p.on_peer_down(peer));
                if let Some(vpage) = failed {
                    self.fail_fault_thread(vpage, peer);
                }
            }
            HibInterrupt::PeerUp { peer } => {
                // Crash-stop restart: reconcile — copies of pages the
                // restarted node manages are stale against its rebuilt
                // directory and must refault.
                self.stats.peer_ups += 1;
                let fx = self.os.vsm.on_peer_up(peer);
                self.apply_vsm_effects(fx);
                if let Some(p) = self.os.pager.as_mut() {
                    p.on_peer_up(peer);
                }
            }
        }
    }

    /// Releases the thread frozen on an OS page fault with a structured
    /// failure: the home/server the fault depended on was convicted dead.
    fn fail_fault_thread(&mut self, vpage: u64, peer: NodeId) {
        let _ = vpage;
        let Some((i, _action)) = self.fault_thread.take() else {
            return; // the fault resolved before the conviction landed
        };
        debug_assert!(matches!(self.threads[i].state, ThreadState::WaitFault));
        self.stats.op_failures += 1;
        self.requeue(
            i,
            Resume::Failed(tg_hib::OpError::PeerUnreachable { peer }),
            self.timing.os_trap,
        );
        self.kick(SimTime::ZERO);
        self.start_queued_fault();
    }

    fn on_os_task(&mut self, kind: u16, a: u64, b: u64) {
        match kind {
            task::VSM_FAULT => {
                let home = self.os.vsm.home(a);
                let effects = if home != self.id && self.hib.peer_down(home) {
                    // Fail fast: the manager is already convicted dead.
                    // Sending the request into the void would only stall
                    // the thread until the next conviction sweep.
                    self.os.vsm.fail_fast_fault(a)
                } else {
                    self.os.vsm.on_fault(a, b != 0)
                };
                self.apply_vsm_effects(effects);
            }
            task::VSM_RETRY => {
                let (i, action) = self
                    .fault_thread
                    .take()
                    .expect("retry without pending fault");
                // Keep cur_start: the fault time counts into the op latency.
                let start = self.threads[i].cur_start;
                self.dispatch(i, action, start, false);
                // Only now tell the manager we are done: the access above
                // has executed against the fresh mapping, so a subsequent
                // invalidation can no longer starve it.
                for (dst, msg) in std::mem::take(&mut self.deferred_os_sends) {
                    if dst == self.id {
                        self.schedule_self(OS_LOOPBACK, ClusterEvent::OsMsg { src: self.id, msg });
                    } else {
                        self.with_hib(|hib, shim| hib.send_os_message(dst, msg, shim));
                    }
                }
                self.start_queued_fault();
            }
            task::REPLICATE => {
                let effects = self
                    .os
                    .start_replication(NodeId::new(a as u16), tg_wire::PageNum::new(b as u32));
                self.apply_os_effects(effects);
            }
            task::PAGER_FAULT => {
                let down_server = {
                    let pager = self.os.pager.as_ref().expect("pager fault without a pager");
                    if pager.server_is_down() {
                        pager.server()
                    } else {
                        None
                    }
                };
                if let Some(peer) = down_server {
                    // Fail fast: the memory server is convicted dead.
                    self.fail_fault_thread(a, peer);
                } else {
                    let effects = self
                        .os
                        .pager
                        .as_mut()
                        .expect("pager fault without a pager")
                        .on_fault(a);
                    self.apply_pager_effects(effects);
                }
            }
            task::PAGER_DISK_DONE => {
                let effects = self
                    .os
                    .pager
                    .as_mut()
                    .expect("disk completion without a pager")
                    .on_disk_done(a);
                self.apply_pager_effects(effects);
            }
            other => unreachable!("unknown OS task {other:#x}"),
        }
    }

    /// After a fault resolves, admit the next thread waiting for the
    /// fault slot by re-dispatching its access.
    fn start_queued_fault(&mut self) {
        if self.fault_thread.is_some() {
            return;
        }
        let waiting = self
            .threads
            .iter()
            .position(|t| matches!(t.state, ThreadState::WaitFaultSlot(_)));
        if let Some(j) = waiting {
            let action = match std::mem::replace(&mut self.threads[j].state, ThreadState::Running) {
                ThreadState::WaitFaultSlot(a) => a,
                other => unreachable!("checked state, got {other:?}"),
            };
            let start = self.threads[j].cur_start;
            self.dispatch(j, action, start, false);
        }
    }

    fn on_os_msg(&mut self, src: NodeId, msg: WireMsg) {
        if crate::vsm::VsmNode::is_vsm_msg(&msg) {
            let effects = self.os.vsm.on_msg(src, &msg);
            self.apply_vsm_effects(effects);
            return;
        }
        match msg {
            WireMsg::DmaData { tag, nbytes, last } => {
                if self.os.accept_dma(tag, nbytes, last).is_some() {
                    let waiting = self
                        .threads
                        .iter()
                        .position(|t| matches!(t.state, ThreadState::WaitRecv(w) if w == tag));
                    if let Some(i) = waiting {
                        let total = self.os.take_message(tag).expect("just completed");
                        let cost = self.timing.os_trap + self.timing.copy_cost(total);
                        self.requeue(i, Resume::Value(total), cost);
                        self.kick(SimTime::ZERO);
                    }
                }
            }
            WireMsg::PageData {
                tag,
                index,
                vals,
                last,
            } if self.os.is_replication_tag(tag) => {
                let effects = self.os.replication_data(tag, index, vals, last);
                self.apply_os_effects(effects);
            }
            WireMsg::PageData {
                tag,
                index,
                vals,
                last,
            } if RemotePager::is_pager_tag(tag) => {
                // A pager fetch: write into the faulted page's local frame.
                let pager = self.os.pager.as_mut().expect("pager data");
                let frame = pager.local_frame(u64::from(tag & !PAGER_TAG_BASE));
                self.segment
                    .write_block(frame.base().add(u64::from(index) * 8), &vals);
                let effects = self
                    .os
                    .pager
                    .as_mut()
                    .expect("pager data")
                    .on_page_data(tag, last);
                self.apply_pager_effects(effects);
            }
            WireMsg::PageData {
                tag,
                index,
                vals,
                last: _,
            } if tag & PAGER_PUSH_TAG != 0 => {
                // We are a memory server receiving an evicted page: store it
                // into the named frame of our segment.
                let frame = tg_wire::PageNum::new(tag & !PAGER_PUSH_TAG);
                self.segment
                    .write_block(frame.base().add(u64::from(index) * 8), &vals);
            }
            WireMsg::PageFetchReq { .. } => {
                // Hardware-served page fetch; nothing for this OS to do.
            }
            other => {
                // Unclaimed software traffic is a wiring bug.
                unreachable!("{}: unhandled OS message {other:?}", self.name);
            }
        }
    }

    fn apply_os_effects(&mut self, effects: Vec<OsEffect>) {
        for eff in effects {
            match eff {
                OsEffect::SendMsg { dst, msg } => {
                    if dst == self.id {
                        self.schedule_self(OS_LOOPBACK, ClusterEvent::OsMsg { src: self.id, msg });
                    } else {
                        self.with_hib(|hib, shim| hib.send_os_message(dst, msg, shim));
                    }
                }
                OsEffect::WriteBurst { frame, index, vals } => {
                    self.segment
                        .write_block(frame.base().add(u64::from(index) * 8), &vals);
                }
                OsEffect::MapLocal {
                    vpage,
                    frame,
                    writable,
                } => {
                    let flags = if writable {
                        tg_mem::PageFlags::RW
                    } else {
                        tg_mem::PageFlags::RO
                    };
                    self.mmu
                        .table_mut()
                        .map(vpage, PAddr::local_shared(frame.base()), flags);
                    self.stats.replications += 1;
                }
                OsEffect::DisarmCounters { node, page } => {
                    self.hib.shared_map().disarm_counters(node, page);
                }
            }
        }
    }

    fn apply_vsm_effects(&mut self, effects: Vec<VsmEffect>) {
        let retrying = effects
            .iter()
            .any(|e| matches!(e, VsmEffect::ResumeFault { .. }));
        for eff in effects {
            match eff {
                VsmEffect::Send { dst, msg } => {
                    if retrying && is_vsm_done(&msg) {
                        self.deferred_os_sends.push((dst, msg));
                    } else if dst == self.id {
                        self.schedule_self(OS_LOOPBACK, ClusterEvent::OsMsg { src: self.id, msg });
                    } else {
                        self.with_hib(|hib, shim| hib.send_os_message(dst, msg, shim));
                    }
                }
                VsmEffect::SendPage { dst, gpage, frame } => {
                    debug_assert_ne!(dst, self.id, "page to self");
                    let tag = crate::vsm::VSM_TAG_BASE | gpage as u32;
                    let words = tg_wire::PAGE_WORDS as u32;
                    let burst = 64u32;
                    let mut index = 0;
                    while index < words {
                        let n = burst.min(words - index);
                        let vals = self
                            .segment
                            .read_block(frame.base().add(u64::from(index) * 8), u64::from(n));
                        let last = index + n >= words;
                        self.with_hib(|hib, shim| {
                            hib.send_os_message(
                                dst,
                                WireMsg::PageData {
                                    tag,
                                    index,
                                    vals: vals.into(),
                                    last,
                                },
                                shim,
                            )
                        });
                        index += n;
                    }
                }
                VsmEffect::MapRead { vpage, frame } => {
                    self.mmu.table_mut().map(
                        vpage,
                        PAddr::local_shared(frame.base()),
                        tg_mem::PageFlags::RO,
                    );
                }
                VsmEffect::MapWrite { vpage, frame } => {
                    self.mmu.table_mut().map(
                        vpage,
                        PAddr::local_shared(frame.base()),
                        tg_mem::PageFlags::RW,
                    );
                }
                VsmEffect::Unmap { vpage } => {
                    self.mmu.table_mut().unmap(vpage);
                    self.stats.invalidations += 1;
                }
                VsmEffect::WriteBurst { frame, index, vals } => {
                    self.segment
                        .write_block(frame.base().add(u64::from(index) * 8), &vals);
                }
                VsmEffect::ResumeFault { .. } => {
                    // Charge map + trap-return costs, then retry the access.
                    self.schedule_self(
                        self.timing.os_page_map + self.timing.os_trap,
                        ClusterEvent::OsTask {
                            kind: task::VSM_RETRY,
                            a: 0,
                            b: 0,
                        },
                    );
                }
                VsmEffect::FailFault { vpage, peer } => {
                    self.fail_fault_thread(vpage, peer);
                }
            }
        }
    }

    fn apply_pager_effects(&mut self, effects: Vec<PagerEffect>) {
        for eff in effects {
            match eff {
                PagerEffect::SendMsg { dst, msg } => {
                    debug_assert_ne!(dst, self.id, "pager server is remote");
                    self.with_hib(|hib, shim| hib.send_os_message(dst, msg, shim));
                }
                PagerEffect::PushPage {
                    dst,
                    server_frame,
                    local_frame,
                } => {
                    // Stream the victim page to the server's frame.
                    let tag = PAGER_PUSH_TAG | server_frame.raw();
                    let words = tg_wire::PAGE_WORDS as u32;
                    let burst = 64u32;
                    let mut index = 0;
                    while index < words {
                        let n = burst.min(words - index);
                        let vals = self
                            .segment
                            .read_block(local_frame.base().add(u64::from(index) * 8), u64::from(n));
                        let last = index + n >= words;
                        self.with_hib(|hib, shim| {
                            hib.send_os_message(
                                dst,
                                WireMsg::PageData {
                                    tag,
                                    index,
                                    vals: vals.into(),
                                    last,
                                },
                                shim,
                            )
                        });
                        index += n;
                    }
                }
                PagerEffect::Unmap { vpage } => {
                    self.mmu.table_mut().unmap(vpage);
                }
                PagerEffect::Map { vpage, frame } => {
                    self.mmu.table_mut().map(
                        vpage,
                        PAddr::local_shared(frame.base()),
                        tg_mem::PageFlags::RW,
                    );
                }
                PagerEffect::DiskWait { vpage } => {
                    // Disk transfer: eviction write-back overlaps the fetch.
                    self.schedule_self(
                        self.timing.disk_page_transfer,
                        ClusterEvent::OsTask {
                            kind: task::PAGER_DISK_DONE,
                            a: vpage,
                            b: 0,
                        },
                    );
                }
                PagerEffect::Resume => {
                    self.schedule_self(
                        self.timing.os_page_map + self.timing.os_trap,
                        ClusterEvent::OsTask {
                            kind: task::VSM_RETRY,
                            a: 0,
                            b: 0,
                        },
                    );
                }
            }
        }
    }

    fn with_hib<R>(&mut self, f: impl FnOnce(&mut Hib, &mut Shim<'_>) -> R) -> R {
        let mut shim = Shim {
            segment: &mut self.segment,
            out: &mut self.outbox,
            now: self.now,
        };
        f(&mut self.hib, &mut shim)
    }

    /// Like [`Node::with_hib`], but attributes any packet the call injects
    /// to thread `i`'s current operation (for the op-level probe). Stale
    /// injections from interleaved rx handling are discarded first.
    fn with_hib_traced<R>(&mut self, i: usize, f: impl FnOnce(&mut Hib, &mut Shim<'_>) -> R) -> R {
        if self.probe.is_some() {
            let _ = self.hib.take_last_injected();
        }
        let r = self.with_hib(f);
        if self.probe.is_some() {
            if let Some(t) = self.hib.take_last_injected() {
                self.threads[i].cur_trace = Some(t);
            }
        }
        r
    }
}

/// True for the VSM completion notifications that must trail the retried
/// access.
fn is_vsm_done(msg: &WireMsg) -> bool {
    matches!(
        msg,
        WireMsg::OsCtl {
            kind: crate::vsm::kind::DONE_READ | crate::vsm::kind::DONE_WRITE,
            ..
        }
    )
}

impl Component<ClusterEvent> for Node {
    fn on_event(&mut self, ev: ClusterEvent, ctx: &mut Ctx<'_, ClusterEvent>) {
        self.now = ctx.now();
        match ev {
            ClusterEvent::Start => {
                // Build the ready queue from every queued (fresh) process.
                self.rq.clear();
                for (i, t) in self.threads.iter().enumerate() {
                    if matches!(t.state, ThreadState::Queued(_)) {
                        self.rq.push_back(i);
                    }
                }
                self.kick(SimTime::ZERO);
            }
            ClusterEvent::CpuStep => self.step_cpu(ctx.now()),
            ClusterEvent::Net(nev) => self.with_hib(|hib, shim| hib.on_net(nev, shim)),
            ClusterEvent::HibTick(t) => self.with_hib(|hib, shim| hib.on_tick(t, shim)),
            ClusterEvent::HibDone(res) => self.on_hib_done(res),
            ClusterEvent::Interrupt(int) => self.on_interrupt(int),
            ClusterEvent::OsMsg { src, msg } => self.on_os_msg(src, msg),
            ClusterEvent::OsTask { kind, a, b } => self.on_os_task(kind, a, b),
        }
        // Drain everything scheduled during this event.
        let self_id = ctx.self_id();
        for (delay, dst, ev) in self.outbox.drain(..) {
            ctx.send(dst.unwrap_or(self_id), delay, ev);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
