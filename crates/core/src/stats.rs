//! Per-node operation statistics.

use tg_sim::{SimTime, Summary};

/// Latency summaries (microseconds) and counters for one workstation.
///
/// One [`Summary`] per operation class; the E2/E3 experiments read
/// `remote_writes` and `remote_reads` directly against the paper's §3.2
/// table.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Remote (window) reads — CPU-observed microseconds.
    pub remote_reads: Summary,
    /// Remote (window) writes.
    pub remote_writes: Summary,
    /// Local shared-segment reads.
    pub local_reads: Summary,
    /// Local shared-segment writes (incl. replica/owned/eager pages).
    pub local_writes: Summary,
    /// Private-memory accesses.
    pub private_accesses: Summary,
    /// Atomic operations (full launch sequence).
    pub atomics: Summary,
    /// Remote-copy launches (CPU-side cost only; completion is async).
    pub copies: Summary,
    /// Fence stalls.
    pub fences: Summary,
    /// OS message sends (trap + copy).
    pub sends: Summary,
    /// OS message receives (blocked time).
    pub recvs: Summary,
    /// Page faults taken (VSM baseline).
    pub faults: u64,
    /// Pages replicated locally by the alarm policy.
    pub replications: u64,
    /// Pages invalidated under VSM.
    pub invalidations: u64,
    /// Protection violations observed.
    pub protection_faults: u64,
    /// Link-layer faults surfaced to the OS (duplicate credits, FIFO
    /// overflows, dead links).
    pub link_failures: u64,
    /// Ack-starvation warnings surfaced to the OS: the control plane on
    /// the board's uplink went quiet while retransmissions kept burning
    /// budget.
    pub link_starvations: u64,
    /// Peer-down verdicts delivered to the OS by the failure detector.
    pub peer_downs: u64,
    /// Peer-up (restart) verdicts delivered to the OS.
    pub peer_ups: u64,
    /// Remote operations resolved with a structured failure
    /// (`OpError::PeerUnreachable`) instead of completing.
    pub op_failures: u64,
    /// When the process halted (none if still running).
    pub halted_at: Option<SimTime>,
}

impl NodeStats {
    /// Records a completed operation of the given class.
    pub(crate) fn record(&mut self, class: OpClass, latency: SimTime) {
        let us = latency.as_us_f64();
        match class {
            OpClass::RemoteRead => self.remote_reads.add(us),
            OpClass::RemoteWrite => self.remote_writes.add(us),
            OpClass::LocalRead => self.local_reads.add(us),
            OpClass::LocalWrite => self.local_writes.add(us),
            OpClass::Private => self.private_accesses.add(us),
            OpClass::Atomic => self.atomics.add(us),
            OpClass::Copy => self.copies.add(us),
            OpClass::Fence => self.fences.add(us),
            OpClass::Send => self.sends.add(us),
            OpClass::Recv => self.recvs.add(us),
            OpClass::Compute => {}
        }
    }
}

/// Operation classes for latency accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpClass {
    RemoteRead,
    RemoteWrite,
    LocalRead,
    LocalWrite,
    Private,
    Atomic,
    Copy,
    Fence,
    Send,
    Recv,
    Compute,
}

impl OpClass {
    /// The probe-level operation kind, if this class is observable
    /// (compute and private-memory ops have no packet lifecycle).
    pub(crate) fn op_kind(self) -> Option<tg_wire::trace::OpKind> {
        use tg_wire::trace::OpKind;
        match self {
            OpClass::RemoteRead => Some(OpKind::RemoteRead),
            OpClass::RemoteWrite => Some(OpKind::RemoteWrite),
            OpClass::LocalRead => Some(OpKind::LocalRead),
            OpClass::LocalWrite => Some(OpKind::LocalWrite),
            OpClass::Atomic => Some(OpKind::Atomic),
            OpClass::Copy => Some(OpKind::Copy),
            OpClass::Fence => Some(OpKind::Fence),
            OpClass::Send => Some(OpKind::Send),
            OpClass::Recv => Some(OpKind::Recv),
            OpClass::Private | OpClass::Compute => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_the_right_summary() {
        let mut s = NodeStats::default();
        s.record(OpClass::RemoteWrite, SimTime::from_ns(700));
        s.record(OpClass::RemoteRead, SimTime::from_us(7));
        s.record(OpClass::Compute, SimTime::from_us(1)); // not summarized
        assert_eq!(s.remote_writes.count(), 1);
        assert!((s.remote_writes.mean() - 0.7).abs() < 1e-9);
        assert_eq!(s.remote_reads.count(), 1);
        assert_eq!(s.local_reads.count(), 0);
    }
}
