//! Synchronization primitives built on the remote atomic operations.
//!
//! The paper embeds the MEMORY_BARRIER inside every synchronization
//! operation (§2.3.5: "The MEMORY_BARRIER operation is embedded inside all
//! implementations of synchronization operations (e.g. locks, barriers)").
//! These helpers are poll-style sub-state-machines that processes embed:
//! each `step` consumes the previous action's [`Resume`] and either asks
//! for another [`Action`] or reports completion.

use tg_mem::VAddr;
use tg_sim::SimTime;

use crate::process::{Action, Resume};

/// One step of an embedded synchronization machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncStep {
    /// Issue this action and feed the result back to `step`.
    Do(Action),
    /// The operation completed (for acquires: the lock is held).
    Ready,
}

/// Test-and-set spinlock acquisition with exponential backoff, using
/// `fetch_and_store` (§2.2.3).
///
/// # Example
///
/// ```
/// use telegraphos::sync::{LockAcquire, SyncStep};
/// use telegraphos::{Action, Resume};
/// use tg_mem::VAddr;
///
/// let mut acq = LockAcquire::new(VAddr::new(0x4000_0000));
/// // First step issues the fetch_and_store.
/// let SyncStep::Do(Action::FetchStore(_, 1)) = acq.step(Resume::Start) else {
///     panic!("expected a fetch_and_store");
/// };
/// // Lock was free (old value 0): acquired.
/// assert_eq!(acq.step(Resume::Value(0)), SyncStep::Ready);
/// ```
#[derive(Clone, Debug)]
pub struct LockAcquire {
    lock: VAddr,
    backoff: SimTime,
    spinning: bool,
    /// Failed attempts (contention statistic).
    pub attempts: u32,
}

impl LockAcquire {
    /// Prepares to acquire the lock at `lock`.
    pub fn new(lock: VAddr) -> Self {
        LockAcquire {
            lock,
            backoff: SimTime::from_us(1),
            spinning: false,
            attempts: 0,
        }
    }

    /// Advances the acquisition.
    pub fn step(&mut self, r: Resume) -> SyncStep {
        if self.spinning {
            // We just finished a backoff compute; try again.
            self.spinning = false;
            return SyncStep::Do(Action::FetchStore(self.lock, 1));
        }
        match r {
            Resume::Start | Resume::Done => SyncStep::Do(Action::FetchStore(self.lock, 1)),
            Resume::Value(0) => SyncStep::Ready,
            Resume::Value(_) | Resume::Failed(_) => {
                // Held — or the lock's home is (currently) unreachable:
                // crash-stop peers can restart, so back off and retry.
                self.attempts += 1;
                self.spinning = true;
                let wait = self.backoff;
                self.backoff = (self.backoff * 2).min(SimTime::from_us(64));
                SyncStep::Do(Action::Compute(wait))
            }
        }
    }
}

/// Lock release: FENCE (flush outstanding writes), then clear the flag —
/// the paper's UNLOCK.
#[derive(Clone, Debug)]
pub struct LockRelease {
    lock: VAddr,
    fenced: bool,
}

impl LockRelease {
    /// Prepares to release the lock at `lock`.
    pub fn new(lock: VAddr) -> Self {
        LockRelease {
            lock,
            fenced: false,
        }
    }

    /// Advances the release.
    pub fn step(&mut self, _r: Resume) -> SyncStep {
        if !self.fenced {
            self.fenced = true;
            SyncStep::Do(Action::Fence)
        } else {
            // One more step after the store completes reports Ready.
            let lock = self.lock;
            self.fenced = false; // reset for potential reuse
            SyncStep::Do(Action::Write(lock, 0))
        }
    }
}

/// Sense-reversing barrier over `fetch_and_inc` + a sense word.
///
/// `counter` counts arrivals; `sense` flips each episode. The last arriver
/// fences and flips the sense; everyone else spins on the sense word with
/// backoff.
#[derive(Clone, Debug)]
pub struct BarrierWait {
    counter: VAddr,
    sense: VAddr,
    participants: u64,
    my_sense: u64,
    state: BarrierState,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BarrierState {
    Arrive,
    LastFence,
    LastFlip,
    LastReset,
    SpinBackoff,
    SpinRead,
}

impl BarrierWait {
    /// A barrier episode for `participants` nodes. `my_sense` must flip
    /// (0/1) between consecutive episodes on each participant.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn new(counter: VAddr, sense: VAddr, participants: u64, my_sense: u64) -> Self {
        assert!(participants > 0);
        BarrierWait {
            counter,
            sense,
            participants,
            my_sense,
            state: BarrierState::Arrive,
        }
    }

    /// Advances the barrier.
    pub fn step(&mut self, r: Resume) -> SyncStep {
        use BarrierState as S;
        match self.state {
            S::Arrive => match r {
                // On a structured failure (the counter's home is
                // unreachable) re-arrive: the peer may restart, and the
                // caller decides when to give up.
                Resume::Start | Resume::Done | Resume::Failed(_) => {
                    SyncStep::Do(Action::FetchAdd(self.counter, 1))
                }
                Resume::Value(old) => {
                    if old + 1 == self.participants {
                        self.state = S::LastFence;
                        SyncStep::Do(Action::Fence)
                    } else {
                        self.state = S::SpinRead;
                        SyncStep::Do(Action::Read(self.sense))
                    }
                }
            },
            S::LastFence => {
                // Reset the arrival counter for the next episode, then flip.
                self.state = S::LastReset;
                SyncStep::Do(Action::Write(self.counter, 0))
            }
            S::LastReset => {
                self.state = S::LastFlip;
                SyncStep::Do(Action::Write(self.sense, 1 - self.my_sense))
            }
            S::LastFlip => SyncStep::Ready,
            S::SpinRead => match r {
                Resume::Value(v) if v == 1 - self.my_sense => SyncStep::Ready,
                _ => {
                    self.state = S::SpinBackoff;
                    SyncStep::Do(Action::Compute(SimTime::from_us(2)))
                }
            },
            S::SpinBackoff => {
                self.state = S::SpinRead;
                SyncStep::Do(Action::Read(self.sense))
            }
        }
    }
}

/// Ticket-lock acquisition: `fetch_and_inc` takes a ticket, then the
/// holder spins (with backoff) on the now-serving word — FIFO-fair, one
/// atomic per acquisition regardless of contention (the natural use of
/// the paper's `fetch_and_inc`, §2.2.3).
#[derive(Clone, Debug)]
pub struct TicketAcquire {
    ticket_word: VAddr,
    serving_word: VAddr,
    state: TicketState,
    my_ticket: u64,
    backoff: SimTime,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TicketState {
    TakeTicket,
    CheckServing,
    Backoff,
}

impl TicketAcquire {
    /// Prepares to acquire the ticket lock at (`ticket_word`,
    /// `serving_word`).
    pub fn new(ticket_word: VAddr, serving_word: VAddr) -> Self {
        TicketAcquire {
            ticket_word,
            serving_word,
            state: TicketState::TakeTicket,
            my_ticket: 0,
            backoff: SimTime::from_us(2),
        }
    }

    /// The ticket drawn (valid once past `TakeTicket`).
    pub fn ticket(&self) -> u64 {
        self.my_ticket
    }

    /// Advances the acquisition.
    pub fn step(&mut self, r: Resume) -> SyncStep {
        match self.state {
            TicketState::TakeTicket => match r {
                // A structured failure re-draws the ticket: the lock
                // word's home may come back (crash-stop restart).
                Resume::Start | Resume::Done | Resume::Failed(_) => {
                    SyncStep::Do(Action::FetchAdd(self.ticket_word, 1))
                }
                Resume::Value(t) => {
                    self.my_ticket = t;
                    self.state = TicketState::CheckServing;
                    SyncStep::Do(Action::Read(self.serving_word))
                }
            },
            TicketState::CheckServing => match r {
                Resume::Value(now) if now == self.my_ticket => SyncStep::Ready,
                _ => {
                    self.state = TicketState::Backoff;
                    let wait = self.backoff;
                    self.backoff = (self.backoff * 2).min(SimTime::from_us(32));
                    SyncStep::Do(Action::Compute(wait))
                }
            },
            TicketState::Backoff => {
                self.state = TicketState::CheckServing;
                SyncStep::Do(Action::Read(self.serving_word))
            }
        }
    }
}

/// Ticket-lock release: fence, then advance the now-serving word. The
/// holder passes its ticket so the successor's value is exact.
#[derive(Clone, Debug)]
pub struct TicketRelease {
    serving_word: VAddr,
    my_ticket: u64,
    fenced: bool,
}

impl TicketRelease {
    /// Prepares to release the lock held with `my_ticket`.
    pub fn new(serving_word: VAddr, my_ticket: u64) -> Self {
        TicketRelease {
            serving_word,
            my_ticket,
            fenced: false,
        }
    }

    /// Advances the release (fence, then the hand-off store).
    pub fn step(&mut self, _r: Resume) -> SyncStep {
        if !self.fenced {
            self.fenced = true;
            SyncStep::Do(Action::Fence)
        } else {
            SyncStep::Do(Action::Write(self.serving_word, self.my_ticket + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(x: u64) -> VAddr {
        VAddr::new(0x4000_0000 + x)
    }

    #[test]
    fn lock_acquire_spins_then_wins() {
        let mut acq = LockAcquire::new(va(0));
        assert_eq!(
            acq.step(Resume::Start),
            SyncStep::Do(Action::FetchStore(va(0), 1))
        );
        // Contended: old value 1 -> backoff compute, then retry.
        let SyncStep::Do(Action::Compute(_)) = acq.step(Resume::Value(1)) else {
            panic!("expected backoff");
        };
        assert_eq!(
            acq.step(Resume::Done),
            SyncStep::Do(Action::FetchStore(va(0), 1))
        );
        assert_eq!(acq.step(Resume::Value(0)), SyncStep::Ready);
        assert_eq!(acq.attempts, 1);
    }

    #[test]
    fn backoff_grows_but_saturates() {
        let mut acq = LockAcquire::new(va(0));
        let _ = acq.step(Resume::Start);
        let mut waits = Vec::new();
        for _ in 0..10 {
            let SyncStep::Do(Action::Compute(w)) = acq.step(Resume::Value(1)) else {
                panic!("expected backoff");
            };
            waits.push(w);
            let _ = acq.step(Resume::Done); // retry issued
        }
        assert!(waits.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*waits.last().unwrap(), SimTime::from_us(64));
    }

    #[test]
    fn release_fences_before_clearing() {
        let mut rel = LockRelease::new(va(0));
        assert_eq!(rel.step(Resume::Start), SyncStep::Do(Action::Fence));
        assert_eq!(
            rel.step(Resume::Done),
            SyncStep::Do(Action::Write(va(0), 0))
        );
    }

    #[test]
    fn barrier_last_arriver_flips_sense() {
        let mut b = BarrierWait::new(va(0), va(8), 2, 0);
        assert_eq!(
            b.step(Resume::Start),
            SyncStep::Do(Action::FetchAdd(va(0), 1))
        );
        // We are the second (last) of two.
        assert_eq!(b.step(Resume::Value(1)), SyncStep::Do(Action::Fence));
        assert_eq!(b.step(Resume::Done), SyncStep::Do(Action::Write(va(0), 0)));
        assert_eq!(b.step(Resume::Done), SyncStep::Do(Action::Write(va(8), 1)));
        assert_eq!(b.step(Resume::Done), SyncStep::Ready);
    }

    #[test]
    fn barrier_early_arriver_spins_until_sense_flips() {
        let mut b = BarrierWait::new(va(0), va(8), 3, 0);
        let _ = b.step(Resume::Start);
        // First arriver: old = 0.
        assert_eq!(b.step(Resume::Value(0)), SyncStep::Do(Action::Read(va(8))));
        // Sense still old: backoff then re-read.
        let SyncStep::Do(Action::Compute(_)) = b.step(Resume::Value(0)) else {
            panic!("expected backoff");
        };
        assert_eq!(b.step(Resume::Done), SyncStep::Do(Action::Read(va(8))));
        // Sense flipped: through.
        assert_eq!(b.step(Resume::Value(1)), SyncStep::Ready);
    }

    #[test]
    fn ticket_lock_orders_by_ticket() {
        let mut a = TicketAcquire::new(va(0), va(8));
        assert_eq!(
            a.step(Resume::Start),
            SyncStep::Do(Action::FetchAdd(va(0), 1))
        );
        // Drew ticket 2; serving is 0 -> spin.
        assert_eq!(a.step(Resume::Value(2)), SyncStep::Do(Action::Read(va(8))));
        let SyncStep::Do(Action::Compute(_)) = a.step(Resume::Value(0)) else {
            panic!("expected backoff");
        };
        assert_eq!(a.step(Resume::Done), SyncStep::Do(Action::Read(va(8))));
        // Now serving 2: acquired.
        assert_eq!(a.step(Resume::Value(2)), SyncStep::Ready);
        assert_eq!(a.ticket(), 2);
    }

    #[test]
    fn ticket_release_fences_then_hands_off() {
        let mut r = TicketRelease::new(va(8), 2);
        assert_eq!(r.step(Resume::Start), SyncStep::Do(Action::Fence));
        assert_eq!(r.step(Resume::Done), SyncStep::Do(Action::Write(va(8), 3)));
    }

    #[test]
    fn ticket_backoff_saturates() {
        let mut a = TicketAcquire::new(va(0), va(8));
        let _ = a.step(Resume::Start);
        let _ = a.step(Resume::Value(9)); // drew ticket 9, read issued
        let mut last = SimTime::ZERO;
        for _ in 0..8 {
            let SyncStep::Do(Action::Compute(w)) = a.step(Resume::Value(0)) else {
                panic!("expected backoff");
            };
            assert!(w >= last);
            last = w;
            let _ = a.step(Resume::Done);
        }
        assert_eq!(last, SimTime::from_us(32));
    }
}
