//! The per-node operating-system layer.
//!
//! Holds the VSM baseline state, the alarm-driven page-replication policy
//! (§2.2.6: "alarm-based replication"), and the message-passing baseline's
//! inbox. Like the VSM module it is a pure state machine: the node executes
//! the returned [`OsEffect`]s and charges the costs.

use std::collections::HashMap;

use tg_wire::{NodeId, PageNum, WireMsg};

use crate::pager::RemotePager;
use crate::vsm::VsmNode;

/// Deferred-OS-work task codes (scheduled as `ClusterEvent::OsTask`).
pub mod task {
    /// VSM fault processing after the trap entry (`a` = vpage, `b` = write).
    pub const VSM_FAULT: u16 = 0x100;
    /// Retry the faulted action after mapping.
    pub const VSM_RETRY: u16 = 0x101;
    /// Start alarm-driven replication (`a` = home node, `b` = page).
    pub const REPLICATE: u16 = 0x102;
    /// Pager fault processing after the trap entry (`a` = vpage).
    pub const PAGER_FAULT: u16 = 0x103;
    /// A disk page transfer finished (`a` = vpage).
    pub const PAGER_DISK_DONE: u16 = 0x104;
}

/// Tag namespace for alarm-replication page fetches.
pub const REPL_TAG_BASE: u32 = 0x4000_0000;

/// How the OS responds to page-access alarms.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReplicatePolicy {
    /// Ignore alarms (monitoring only).
    #[default]
    Never,
    /// Replicate the hot page into local memory when the alarm fires
    /// (the policy of §2.2.6 / refs \[21, 22\]).
    OnAlarm,
}

/// Node-level actions requested by the OS.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OsEffect {
    /// Transmit an OS message (HIB transport; loop back if to self).
    SendMsg {
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: WireMsg,
    },
    /// Write page-data words into a local segment frame.
    WriteBurst {
        /// Local frame.
        frame: PageNum,
        /// Word index within the page.
        index: u32,
        /// The words.
        vals: tg_wire::Payload,
    },
    /// Map `vpage` to a local frame (replication completed).
    MapLocal {
        /// Virtual page.
        vpage: u64,
        /// Local frame.
        frame: PageNum,
        /// Writable mapping?
        writable: bool,
    },
    /// Stop counting accesses to a remote page (it is now local).
    DisarmCounters {
        /// Home node of the page.
        node: NodeId,
        /// Page number at the home.
        page: PageNum,
    },
}

#[derive(Clone, Copy, Debug)]
struct ReplPending {
    vpage: u64,
    frame: PageNum,
    node: NodeId,
    page: PageNum,
}

#[derive(Clone, Copy, Debug, Default)]
struct MsgBuf {
    bytes: u64,
    complete: bool,
}

/// The OS state for one node.
#[derive(Debug)]
pub struct Os {
    /// The VSM baseline (always present; only used for registered pages).
    pub vsm: VsmNode,
    /// The remote-memory/disk pager (experiment E11), when configured.
    pub pager: Option<RemotePager>,
    policy: ReplicatePolicy,
    /// Free local segment frames the OS may allocate.
    free_frames: Vec<PageNum>,
    /// Which vpage a remote page `(home, page)` is mapped at here.
    remote_vpage: HashMap<(NodeId, PageNum), u64>,
    /// Replications in flight, by fetch tag.
    repl_pending: HashMap<u32, ReplPending>,
    /// Pages already replicated (suppress duplicate alarms).
    replicated: HashMap<(NodeId, PageNum), PageNum>,
    next_repl_tag: u32,
    inbox: HashMap<u32, MsgBuf>,
}

impl Os {
    /// Creates the OS layer for `me`.
    pub fn new(me: NodeId) -> Self {
        Os {
            vsm: VsmNode::new(me),
            pager: None,
            policy: ReplicatePolicy::Never,
            free_frames: Vec::new(),
            remote_vpage: HashMap::new(),
            repl_pending: HashMap::new(),
            replicated: HashMap::new(),
            next_repl_tag: 0,
            inbox: HashMap::new(),
        }
    }

    /// Sets the alarm policy.
    pub fn set_policy(&mut self, policy: ReplicatePolicy) {
        self.policy = policy;
    }

    /// Grants the OS a pool of free local frames (cluster setup).
    pub fn grant_frames(&mut self, frames: impl IntoIterator<Item = PageNum>) {
        self.free_frames.extend(frames);
    }

    /// Registers where a remote page is mapped locally (cluster setup), so
    /// alarm replication can find the vpage to remap.
    pub fn note_remote_mapping(&mut self, home: NodeId, page: PageNum, vpage: u64) {
        self.remote_vpage.insert((home, page), vpage);
    }

    /// Should an alarm on this page trigger replication?
    pub fn wants_replication(&self, node: NodeId, page: PageNum) -> bool {
        self.policy == ReplicatePolicy::OnAlarm
            && !self.replicated.contains_key(&(node, page))
            && self.remote_vpage.contains_key(&(node, page))
            && !self.free_frames.is_empty()
    }

    /// Kicks off replication of a hot remote page: fetch the page image
    /// with the hardware page-fetch stream.
    pub fn start_replication(&mut self, node: NodeId, page: PageNum) -> Vec<OsEffect> {
        if !self.wants_replication(node, page) {
            return Vec::new();
        }
        let vpage = self.remote_vpage[&(node, page)];
        let frame = self.free_frames.pop().expect("checked non-empty");
        let tag = REPL_TAG_BASE | self.next_repl_tag;
        self.next_repl_tag += 1;
        self.repl_pending.insert(
            tag,
            ReplPending {
                vpage,
                frame,
                node,
                page,
            },
        );
        // Mark replicated now so repeat alarms don't double-fetch.
        self.replicated.insert((node, page), frame);
        vec![OsEffect::SendMsg {
            dst: node,
            msg: WireMsg::PageFetchReq {
                page: page.raw(),
                tag,
            },
        }]
    }

    /// True if this PageData tag belongs to a replication fetch.
    pub fn is_replication_tag(&self, tag: u32) -> bool {
        tag & REPL_TAG_BASE != 0 && tag & crate::vsm::VSM_TAG_BASE == 0
    }

    /// Accepts a replication PageData burst.
    pub fn replication_data(
        &mut self,
        tag: u32,
        index: u32,
        vals: tg_wire::Payload,
        last: bool,
    ) -> Vec<OsEffect> {
        let Some(&pending) = self.repl_pending.get(&tag) else {
            return Vec::new();
        };
        let mut fx = vec![OsEffect::WriteBurst {
            frame: pending.frame,
            index,
            vals,
        }];
        if last {
            self.repl_pending.remove(&tag);
            fx.push(OsEffect::MapLocal {
                vpage: pending.vpage,
                frame: pending.frame,
                writable: true,
            });
            fx.push(OsEffect::DisarmCounters {
                node: pending.node,
                page: pending.page,
            });
        }
        fx
    }

    /// Local frame a page was replicated into, if any.
    pub fn replica_frame(&self, node: NodeId, page: PageNum) -> Option<PageNum> {
        self.replicated.get(&(node, page)).copied()
    }

    /// Accumulates a DMA burst; returns the total byte count when the
    /// message completes.
    pub fn accept_dma(&mut self, tag: u32, nbytes: u32, last: bool) -> Option<u64> {
        let buf = self.inbox.entry(tag).or_default();
        buf.bytes += u64::from(nbytes);
        if last {
            buf.complete = true;
            Some(buf.bytes)
        } else {
            None
        }
    }

    /// True if the pager manages this virtual page.
    pub fn pager_manages(&self, vpage: u64) -> bool {
        self.pager
            .as_ref()
            .map(|p| p.manages(vpage))
            .unwrap_or(false)
    }

    /// LRU touch for pager-managed pages (no-op without a pager).
    pub fn pager_touch(&mut self, vpage: u64) {
        if let Some(p) = self.pager.as_mut() {
            p.touch(vpage);
        }
    }

    /// Consumes a completed message, returning its size.
    pub fn take_message(&mut self, tag: u32) -> Option<u64> {
        match self.inbox.get(&tag) {
            Some(buf) if buf.complete => {
                let bytes = buf.bytes;
                self.inbox.remove(&tag);
                Some(bytes)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os() -> Os {
        let mut os = Os::new(NodeId::new(0));
        os.set_policy(ReplicatePolicy::OnAlarm);
        os.grant_frames([PageNum::new(100), PageNum::new(101)]);
        os.note_remote_mapping(NodeId::new(1), PageNum::new(3), 0x20000);
        os
    }

    #[test]
    fn replication_flow() {
        let mut os = os();
        assert!(os.wants_replication(NodeId::new(1), PageNum::new(3)));
        let fx = os.start_replication(NodeId::new(1), PageNum::new(3));
        assert_eq!(fx.len(), 1);
        let tag = match &fx[0] {
            OsEffect::SendMsg {
                dst,
                msg: WireMsg::PageFetchReq { tag, page },
            } => {
                assert_eq!(*dst, NodeId::new(1));
                assert_eq!(*page, 3);
                *tag
            }
            other => panic!("unexpected {other:?}"),
        };
        assert!(os.is_replication_tag(tag));
        // Duplicate alarms are suppressed while (and after) fetching.
        assert!(!os.wants_replication(NodeId::new(1), PageNum::new(3)));

        let fx = os.replication_data(tag, 0, vec![1, 2].into(), false);
        assert_eq!(fx.len(), 1);
        let fx = os.replication_data(tag, 2, vec![3].into(), true);
        assert!(fx
            .iter()
            .any(|e| matches!(e, OsEffect::MapLocal { writable: true, .. })));
        assert!(fx
            .iter()
            .any(|e| matches!(e, OsEffect::DisarmCounters { .. })));
        assert_eq!(
            os.replica_frame(NodeId::new(1), PageNum::new(3)),
            Some(PageNum::new(101))
        );
    }

    #[test]
    fn no_replication_without_policy() {
        let mut os = Os::new(NodeId::new(0));
        os.grant_frames([PageNum::new(9)]);
        os.note_remote_mapping(NodeId::new(1), PageNum::new(3), 0x20000);
        assert!(!os.wants_replication(NodeId::new(1), PageNum::new(3)));
        assert!(os
            .start_replication(NodeId::new(1), PageNum::new(3))
            .is_empty());
    }

    #[test]
    fn no_replication_without_frames() {
        let mut os = Os::new(NodeId::new(0));
        os.set_policy(ReplicatePolicy::OnAlarm);
        os.note_remote_mapping(NodeId::new(1), PageNum::new(3), 0x20000);
        assert!(!os.wants_replication(NodeId::new(1), PageNum::new(3)));
    }

    #[test]
    fn dma_inbox_assembles_messages() {
        let mut os = Os::new(NodeId::new(0));
        assert_eq!(os.accept_dma(7, 1024, false), None);
        assert_eq!(os.take_message(7), None, "incomplete");
        assert_eq!(os.accept_dma(7, 500, true), Some(1524));
        assert_eq!(os.take_message(7), Some(1524));
        assert_eq!(os.take_message(7), None, "consumed");
    }

    #[test]
    fn tag_namespaces_do_not_overlap() {
        let os = os();
        assert!(os.is_replication_tag(REPL_TAG_BASE | 5));
        assert!(!os.is_replication_tag(crate::vsm::VSM_TAG_BASE | 5));
        assert!(!os.is_replication_tag(5));
    }
}
