//! # telegraphos — the cluster model and user-level shared-memory API
//!
//! The top of the reproduction stack: simulated DEC-Alpha-class
//! workstations (CPU + MMU + private memory + exported shared segment +
//! Host Interface Board + OS layer) wired through the `tg-net` switch
//! fabric, exposing the paper's programming model:
//!
//! * user-level **remote writes** triggered by plain stores to window
//!   addresses, **blocking remote reads**, **remote atomics** and
//!   **non-blocking remote copy** launched by the §2.2.4 instruction
//!   sequences (PAL special mode or contexts + shadow addressing);
//! * **FENCE** and fence-embedding locks/barriers ([`sync`]);
//! * **eager-update multicast** pages and **owner-serialized coherent
//!   replication** (§2.3), set up by the privileged [`Cluster`] API exactly
//!   like the paper's "initialization phase that maps the shared pages";
//! * the software baselines the paper argues against: a page-fault-driven
//!   **VSM** (invalidate) protocol and **OS-trap message passing**.
//!
//! # Quickstart
//!
//! ```
//! use telegraphos::{Action, ClusterBuilder, Script};
//!
//! // Two workstations on one switch — the paper's §3.2 testbed.
//! let mut cluster = ClusterBuilder::new(2).build();
//! let page = cluster.alloc_shared(1); // physically on node 1
//!
//! // Node 0 stores into node 1's memory with a single store instruction,
//! // then reads it back across the network.
//! cluster.set_process(
//!     0,
//!     Script::new(vec![
//!         Action::Write(page.va(0), 7),
//!         Action::Fence,
//!         Action::Read(page.va(0)),
//!     ]),
//! );
//! cluster.run();
//! assert_eq!(cluster.read_shared(&page, 0), 7);
//! let stats = cluster.node(0).stats();
//! // Remote writes cost well under a microsecond; reads several (§3.2).
//! assert!(stats.remote_writes.mean() < 1.0);
//! assert!(stats.remote_reads.mean() > 2.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod event;
mod node;
pub mod observe;
mod os;
pub mod pager;
mod process;
mod stats;
pub mod sync;
pub mod vsm;

pub use cluster::{
    Cluster, ClusterBuilder, ComponentDetail, ComponentReport, DeadlockReport, LinkSnapshot,
    SharedPage, StalledNode, PAGED_VA_BASE, PRIVATE_VA_BASE, SHARED_VA_BASE,
};
pub use event::ClusterEvent;
pub use node::Node;
pub use observe::{OpBreakdown, Segment, TraceCollector};
pub use os::{Os, OsEffect, ReplicatePolicy};
pub use pager::{Backing, RemotePager};
pub use process::{Action, Process, Resume, Script};
pub use stats::NodeStats;

// Fault-injection and reliability vocabulary, re-exported so experiments
// and binaries need only this crate.
pub use tg_hib::OpError;
pub use tg_net::{
    CrashWindow, DetectParams, FaultPlan, FaultStats, LinkError, LinkId, RelParams, RetxMode,
    StalledLink, Topology,
};
pub use tg_sim::WatchdogOutcome;
