//! The simulation-wide event type.

use tg_hib::{CpuResult, HibInterrupt, HibTick};
use tg_net::{NetEvent, NetMessage};
use tg_wire::{NodeId, WireMsg};

/// Every event a cluster component can receive.
///
/// Switches only ever see (and the network builder only ever sends) the
/// [`Net`](ClusterEvent::Net) variant, unwrapped through the [`NetMessage`]
/// embedding; the rest drive the workstation nodes.
#[derive(Clone, Debug)]
pub enum ClusterEvent {
    /// Fabric traffic: packet arrivals and flow-control credits.
    Net(NetEvent),
    /// HIB-internal timer (TX serialization done, RX pipeline done).
    HibTick(HibTick),
    /// A HIB-side completion for the blocked CPU.
    HibDone(CpuResult),
    /// A HIB interrupt for the OS.
    Interrupt(HibInterrupt),
    /// Software-level message delivered up from the HIB.
    OsMsg {
        /// Sending node.
        src: NodeId,
        /// The message.
        msg: WireMsg,
    },
    /// Deferred OS work (trap exits, VSM protocol steps).
    OsTask {
        /// Protocol-defined task code.
        kind: u16,
        /// First operand.
        a: u64,
        /// Second operand.
        b: u64,
    },
    /// The CPU should take its next step (resume the process).
    CpuStep,
    /// Boot: start running the installed process.
    Start,
}

impl NetMessage for ClusterEvent {
    fn from_net(ev: NetEvent) -> Self {
        ClusterEvent::Net(ev)
    }
    fn into_net(self) -> Result<NetEvent, Self> {
        match self {
            ClusterEvent::Net(ev) => Ok(ev),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_embedding_round_trips() {
        let ev = NetEvent::Credit { port: 2 };
        match ClusterEvent::from_net(ev.clone()).into_net() {
            Ok(out) => assert_eq!(out, ev),
            Err(other) => panic!("lost the event: {other:?}"),
        }
    }

    #[test]
    fn non_net_events_bounce_back() {
        let ev = ClusterEvent::CpuStep;
        assert!(ev.into_net().is_err());
    }
}
