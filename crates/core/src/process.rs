//! The user-program model.
//!
//! Simulated applications are poll-style state machines: the CPU calls
//! [`Process::resume`] with the result of the previous action and receives
//! the next [`Action`]. Workloads in `tg-workloads` and the sync
//! primitives in [`crate::sync`] are built from this interface; the
//! [`Script`] convenience runs a fixed action list.

use tg_mem::VAddr;
use tg_sim::SimTime;
use tg_wire::NodeId;

/// One architectural action issued by a simulated program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Blocking load; resumes with [`Resume::Value`].
    Read(VAddr),
    /// Store (non-blocking at the CPU unless back-pressured).
    Write(VAddr, u64),
    /// Remote `fetch_and_store(va, new)`; resumes with the old value.
    FetchStore(VAddr, u64),
    /// Remote `fetch_and_inc(va, delta)`; resumes with the old value.
    FetchAdd(VAddr, u64),
    /// Remote `compare_and_swap(va, expect, new)`; resumes with the old
    /// value.
    CompareSwap(VAddr, u64, u64),
    /// Non-blocking remote copy of `words` words from `from` to `to`
    /// (destination must map to local shared memory).
    Copy {
        /// Source (typically a remote window address).
        from: VAddr,
        /// Destination (local shared memory).
        to: VAddr,
        /// Number of 64-bit words.
        words: u32,
    },
    /// MEMORY_BARRIER (§2.3.5): stall until all outstanding remote
    /// operations complete.
    Fence,
    /// Local computation for the given duration.
    Compute(SimTime),
    /// OS-trap message send (PVM-style baseline): resumes when the local
    /// OS accepted the message.
    Send {
        /// Destination node.
        dst: NodeId,
        /// Message size.
        bytes: u32,
        /// Message tag for matching.
        tag: u32,
    },
    /// Blocking OS-trap receive of a message with `tag`; resumes with the
    /// byte count.
    Recv {
        /// Tag to wait for.
        tag: u32,
    },
    /// Terminate the process.
    Halt,
}

/// What the previous action produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resume {
    /// First activation: no previous action.
    Start,
    /// The action completed without a value (writes, fences, computes,
    /// copies, sends).
    Done,
    /// The action produced a value (loads, atomics, receives).
    Value(u64),
    /// The action failed structurally: its remote destination crashed.
    /// The process is released to decide what to do — crash-aware
    /// programs fail over; naive ones treat it like [`Resume::Done`].
    Failed(tg_hib::OpError),
}

impl Resume {
    /// The carried value.
    ///
    /// # Panics
    ///
    /// Panics if this resume carries no value — a program logic error.
    pub fn value(self) -> u64 {
        match self {
            Resume::Value(v) => v,
            other => panic!("expected a value, got {other:?}"),
        }
    }
}

/// A simulated user program.
pub trait Process: 'static {
    /// Produces the next action given the previous action's result.
    fn resume(&mut self, r: Resume) -> Action;

    /// [`Process::resume`] with the current simulated instant available.
    /// The CPU always calls this entry point; the default ignores the
    /// clock and delegates, so plain programs only implement `resume`.
    /// Time-aware services (adaptive request timeouts, open-loop load
    /// generators) override this instead.
    fn resume_at(&mut self, r: Resume, now: SimTime) -> Action {
        let _ = now;
        self.resume(r)
    }
}

impl<F: FnMut(Resume) -> Action + 'static> Process for F {
    fn resume(&mut self, r: Resume) -> Action {
        self(r)
    }
}

/// Runs a fixed list of actions, recording every value that comes back.
///
/// # Example
///
/// ```
/// use telegraphos::{Action, Process, Resume, Script};
/// use tg_mem::VAddr;
///
/// let mut s = Script::new(vec![
///     Action::Write(VAddr::new(0x1000_0000), 7),
///     Action::Read(VAddr::new(0x1000_0000)),
/// ]);
/// assert_eq!(s.resume(Resume::Start), Action::Write(VAddr::new(0x1000_0000), 7));
/// assert_eq!(s.resume(Resume::Done), Action::Read(VAddr::new(0x1000_0000)));
/// assert_eq!(s.resume(Resume::Value(7)), Action::Halt);
/// assert_eq!(s.values(), &[7]);
/// ```
#[derive(Debug)]
pub struct Script {
    actions: std::vec::IntoIter<Action>,
    values: Vec<u64>,
    failures: Vec<tg_hib::OpError>,
}

impl Script {
    /// A script over the given actions (a final `Halt` is implicit).
    pub fn new(actions: Vec<Action>) -> Self {
        Script {
            actions: actions.into_iter(),
            values: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Every value returned to the script so far, in order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Every structured operation failure delivered to the script, in
    /// order. A script presses on past failures (crash-stop survivors
    /// keep computing), recording them here for the test or experiment.
    pub fn failures(&self) -> &[tg_hib::OpError] {
        &self.failures
    }
}

impl Process for Script {
    fn resume(&mut self, r: Resume) -> Action {
        match r {
            Resume::Value(v) => self.values.push(v),
            Resume::Failed(err) => self.failures.push(err),
            _ => {}
        }
        self.actions.next().unwrap_or(Action::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_walks_actions_and_collects_values() {
        let mut s = Script::new(vec![
            Action::Compute(SimTime::from_ns(5)),
            Action::Read(VAddr::new(64)),
        ]);
        assert_eq!(
            s.resume(Resume::Start),
            Action::Compute(SimTime::from_ns(5))
        );
        assert_eq!(s.resume(Resume::Done), Action::Read(VAddr::new(64)));
        assert_eq!(s.resume(Resume::Value(9)), Action::Halt);
        assert_eq!(s.resume(Resume::Done), Action::Halt, "stays halted");
        assert_eq!(s.values(), &[9]);
    }

    #[test]
    fn closures_are_processes() {
        let mut calls = 0;
        let mut p = move |_r: Resume| {
            calls += 1;
            if calls > 1 {
                Action::Halt
            } else {
                Action::Fence
            }
        };
        assert_eq!(Process::resume(&mut p, Resume::Start), Action::Fence);
        assert_eq!(Process::resume(&mut p, Resume::Done), Action::Halt);
    }

    #[test]
    #[should_panic(expected = "expected a value")]
    fn resume_value_accessor_guards() {
        let _ = Resume::Done.value();
    }
}
