//! Cluster-level observability: trace collection, per-stage latency
//! breakdowns, and Chrome trace-event export.
//!
//! The probe hooks scattered through the HIBs and switches report raw
//! [`PacketEvent`]s and [`OpEvent`]s; this module turns them into the
//! artifacts the paper's §3.2 evaluation is built from:
//!
//! * [`TraceCollector`] — the standard [`Probe`] sink, installed cluster-
//!   wide by [`Cluster::enable_tracing`](crate::Cluster::enable_tracing);
//! * [`OpBreakdown`] — where one CPU-visible operation spent its time,
//!   stage by stage, telescoping exactly to the end-to-end latency the
//!   node's [`NodeStats`](crate::NodeStats) summaries record;
//! * [`chrome_events`] / [`chrome_trace_json`] — a Chrome trace-event
//!   (Perfetto-loadable) export of the whole run, with
//!   [`counter_track_events`] adding the congestion observatory's metric
//!   time series as counter tracks;
//! * [`op_chains`] — the merged request→response event chains the
//!   breakdowns are built from, for analyzers needing site/stage context;
//! * [`breakdown_report`] — a human-readable aggregate table.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

use tg_sim::{MetricsRegistry, SimTime};
use tg_wire::trace::{OpEvent, PacketEvent, Probe, SharedProbe, Site, TraceId};

/// Interior buffers shared between the collector handle and the probe
/// installed at every component.
#[derive(Debug, Default)]
struct TraceBuffer {
    packets: RefCell<Vec<PacketEvent>>,
    ops: RefCell<Vec<OpEvent>>,
}

impl Probe for TraceBuffer {
    fn packet(&self, ev: PacketEvent) {
        self.packets.borrow_mut().push(ev);
    }

    fn op(&self, ev: OpEvent) {
        self.ops.borrow_mut().push(ev);
    }
}

/// Records every probe event of a run, in delivery order.
///
/// Cloning the collector clones the *handle*; all clones (and the probe
/// installed at the components) share one buffer.
#[derive(Clone, Debug, Default)]
pub struct TraceCollector {
    buf: Rc<TraceBuffer>,
}

impl TraceCollector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// The shareable probe to install at components.
    pub fn probe(&self) -> SharedProbe {
        self.buf.clone()
    }

    /// All packet-lifecycle events recorded so far, in emission order
    /// (which is the engine's deterministic delivery order).
    pub fn packet_events(&self) -> Vec<PacketEvent> {
        self.buf.packets.borrow().clone()
    }

    /// All completed-operation events recorded so far.
    pub fn op_events(&self) -> Vec<OpEvent> {
        self.buf.ops.borrow().clone()
    }

    /// Number of packet events recorded.
    pub fn packet_event_count(&self) -> usize {
        self.buf.packets.borrow().len()
    }

    /// Number of operation events recorded.
    pub fn op_event_count(&self) -> usize {
        self.buf.ops.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.packet_event_count() == 0 && self.op_event_count() == 0
    }

    /// Per-stage breakdowns of every recorded operation that injected a
    /// traceable packet (see [`op_breakdowns`]).
    pub fn breakdowns(&self) -> Vec<OpBreakdown> {
        op_breakdowns(&self.op_events(), &self.packet_events())
    }
}

/// One segment of an operation's latency: the time spent reaching the
/// named lifecycle point from the previous one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Stage label (e.g. `"tx-launch"`); response-packet stages carry a
    /// `"resp-"` prefix. The first segment is `"cpu-issue"`, the last
    /// `"cpu-complete"`.
    pub label: String,
    /// Time spent in this segment.
    pub dur: SimTime,
}

/// Where one CPU-visible operation spent its time, stage by stage.
///
/// The segments telescope: they always sum exactly to `op.end - op.start`,
/// the same latency the issuing node's [`NodeStats`](crate::NodeStats)
/// summary recorded for this operation.
#[derive(Clone, Debug)]
pub struct OpBreakdown {
    /// The operation.
    pub op: OpEvent,
    /// Ordered per-stage segments.
    pub segments: Vec<Segment>,
}

impl OpBreakdown {
    /// Sum of all segments — by construction the operation's end-to-end
    /// latency.
    pub fn total(&self) -> SimTime {
        self.segments
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.dur)
    }
}

/// One event on an operation's critical path: the merged, clamped view
/// that [`op_breakdowns`] builds its segments from, with the raw
/// [`PacketEvent`] retained so analyzers can attribute segments to sites,
/// stages and links.
#[derive(Clone, Copy, Debug)]
pub struct ChainedEvent {
    /// The underlying packet-lifecycle observation.
    pub event: PacketEvent,
    /// Observation time clamped into the op's `[start, end]` window — the
    /// instant the corresponding segment ends at.
    pub at: SimTime,
    /// True when the event belongs to a response packet chained to the
    /// op's request (its segment labels carry the `resp-` prefix).
    pub response: bool,
}

/// The merged request → response event chain of one traced operation, in
/// the exact order [`op_breakdowns`] consumes: stable-sorted by clamped
/// time, so segment `i` of the breakdown spans `events[i-1].at ..
/// events[i].at`.
#[derive(Clone, Debug)]
pub struct OpChain {
    /// The operation.
    pub op: OpEvent,
    /// Its critical-path events, clamped and time-ordered.
    pub events: Vec<ChainedEvent>,
}

/// Computes the merged critical-path event chain of every operation that
/// injected a traceable packet.
///
/// For each op the packet events of its request (same [`TraceId`]) and of
/// any response chained to it (`parent` equal to the request id) are
/// merged in time order and clamped to the op's `[start, end]` window.
/// [`op_breakdowns`] turns these chains into telescoping segments;
/// analyzers that need site/stage context (e.g. per-link attribution)
/// consume the chains directly.
pub fn op_chains(ops: &[OpEvent], packets: &[PacketEvent]) -> Vec<OpChain> {
    // Index packet events by the op they belong to (request id).
    let mut by_req: HashMap<TraceId, Vec<&PacketEvent>> = HashMap::new();
    for ev in packets {
        by_req.entry(ev.trace).or_default().push(ev);
        if let Some(parent) = ev.parent {
            if parent != ev.trace {
                by_req.entry(parent).or_default().push(ev);
            }
        }
    }
    // Chain responses: an event of trace R with parent Q files under Q
    // above; later events of trace R (switch hops, rx, commit) must follow.
    let mut resp_of: HashMap<TraceId, TraceId> = HashMap::new();
    for ev in packets {
        if let Some(parent) = ev.parent {
            if parent != ev.trace {
                resp_of.insert(ev.trace, parent);
            }
        }
    }
    for ev in packets {
        if let Some(&req) = resp_of.get(&ev.trace) {
            let entry = by_req.entry(req).or_default();
            if !entry.iter().any(|e| std::ptr::eq(*e, ev)) {
                entry.push(ev);
            }
        }
    }

    let mut out = Vec::new();
    for op in ops {
        let Some(req) = op.trace else { continue };
        let mut events: Vec<&PacketEvent> = by_req.get(&req).cloned().unwrap_or_default();
        // Emission order is delivery order; a stable sort on the clamped
        // time preserves causal order for same-instant events.
        events.sort_by_key(|e| e.at.max(op.start).min(op.end));
        let events = events
            .into_iter()
            .map(|ev| ChainedEvent {
                event: *ev,
                at: ev.at.max(op.start).min(op.end),
                response: ev.trace != req,
            })
            .collect();
        out.push(OpChain { op: *op, events });
    }
    out
}

/// Computes per-stage breakdowns for every operation that injected a
/// traceable packet.
///
/// The [`op_chains`] events become telescoping segments: `cpu-issue`
/// (issue to first packet event), one segment per lifecycle point
/// reached (`resp-`-prefixed for response packets), and `cpu-complete`
/// (last packet event to CPU-observed completion).
pub fn op_breakdowns(ops: &[OpEvent], packets: &[PacketEvent]) -> Vec<OpBreakdown> {
    op_chains(ops, packets)
        .into_iter()
        .map(|chain| {
            let op = chain.op;
            let mut segments = Vec::with_capacity(chain.events.len() + 2);
            let mut prev = op.start;
            for ev in &chain.events {
                let label = if ev.response {
                    format!("resp-{}", ev.event.stage.label())
                } else {
                    ev.event.stage.label().to_string()
                };
                segments.push(Segment {
                    label,
                    dur: ev.at.saturating_sub(prev),
                });
                prev = ev.at;
            }
            segments.insert(
                0,
                Segment {
                    label: "cpu-issue".to_string(),
                    dur: SimTime::ZERO,
                },
            );
            // Merge the leading zero-length placeholder with the first real
            // segment: time from issue to the first packet event is the CPU
            // issue cost.
            if segments.len() > 1 {
                let first = segments.remove(1);
                segments[0].dur = first.dur;
                segments[0].label = format!("cpu-issue\u{2192}{}", first.label);
            }
            segments.push(Segment {
                label: "cpu-complete".to_string(),
                dur: op.end.saturating_sub(prev),
            });
            OpBreakdown { op, segments }
        })
        .collect()
}

/// One Chrome trace-event, pre-serialization — exposed so checkers can
/// verify track monotonicity without re-parsing JSON.
#[derive(Clone, Debug)]
pub struct ChromeEvent {
    /// Event name shown on the track.
    pub name: String,
    /// Category (`"op"`, `"packet"`, `"metric"`, or `"__metadata"`).
    pub cat: &'static str,
    /// Phase: `'X'` complete, `'i'` instant, `'C'` counter, `'M'` metadata.
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: f64,
    /// Process id (track group): node index, or `1000 + switch index`.
    pub pid: u32,
    /// Thread id within the process: 0 = CPU ops, 1 = packets.
    pub tid: u32,
    /// Extra `args` key/value pairs (both rendered as JSON strings).
    pub args: Vec<(String, String)>,
    /// Numeric `args` entries, rendered as bare JSON numbers — counter
    /// (`'C'`) tracks need numeric values to plot.
    pub num_args: Vec<(String, f64)>,
}

/// Track-group id for a probe site.
fn site_pid(site: Site) -> u32 {
    match site {
        Site::Node(n) => u32::from(n.raw()),
        Site::Switch(s) => 1000 + u32::from(s),
    }
}

/// Builds the Chrome trace-event list for a run: one `'X'` span per
/// completed CPU operation (tid 0 of its node), one `'X'` span per
/// packet-lifecycle transition at each site (tid 1), and `'M'` metadata
/// naming the tracks. Events are sorted by timestamp, so `ts` is
/// monotonically non-decreasing on every track.
pub fn chrome_events(ops: &[OpEvent], packets: &[PacketEvent]) -> Vec<ChromeEvent> {
    let mut events = Vec::new();
    let mut pids: Vec<(u32, String)> = Vec::new();
    let note_pid = |pids: &mut Vec<(u32, String)>, site: Site| {
        let pid = site_pid(site);
        if !pids.iter().any(|(p, _)| *p == pid) {
            pids.push((pid, site.to_string()));
        }
        pid
    };

    for op in ops {
        let pid = note_pid(&mut pids, Site::Node(op.node));
        let mut args = vec![("kind".to_string(), op.kind.label().to_string())];
        if let Some(t) = op.trace {
            args.push(("trace".to_string(), t.to_string()));
        }
        events.push(ChromeEvent {
            name: op.kind.label().to_string(),
            cat: "op",
            ph: 'X',
            ts_us: op.start.as_us_f64(),
            dur_us: op.end.saturating_sub(op.start).as_us_f64(),
            pid,
            tid: 0,
            args,
            num_args: Vec::new(),
        });
    }

    // Packet spans: consecutive lifecycle points of one packet at one site
    // become a span named after the point reached; a site's first
    // observation becomes an instant marker.
    let mut by_packet_site: HashMap<(TraceId, Site), Vec<&PacketEvent>> = HashMap::new();
    for ev in packets {
        by_packet_site
            .entry((ev.trace, ev.site))
            .or_default()
            .push(ev);
    }
    let mut groups: Vec<(&(TraceId, Site), &Vec<&PacketEvent>)> = by_packet_site.iter().collect();
    groups.sort_by_key(|((trace, site), _)| (*trace, site_pid(*site)));
    for ((trace, site), evs) in groups {
        let pid = note_pid(&mut pids, *site);
        let args = |ev: &PacketEvent| {
            vec![
                ("trace".to_string(), trace.to_string()),
                ("kind".to_string(), ev.kind.to_string()),
                ("bytes".to_string(), ev.bytes.to_string()),
            ]
        };
        let mut prev: Option<&PacketEvent> = None;
        for ev in evs {
            match prev {
                None => events.push(ChromeEvent {
                    name: ev.stage.label().to_string(),
                    cat: "packet",
                    ph: 'i',
                    ts_us: ev.at.as_us_f64(),
                    dur_us: 0.0,
                    pid,
                    tid: 1,
                    args: args(ev),
                    num_args: Vec::new(),
                }),
                Some(p) => events.push(ChromeEvent {
                    name: format!("{}\u{2192}{}", p.stage.label(), ev.stage.label()),
                    cat: "packet",
                    ph: 'X',
                    ts_us: p.at.as_us_f64(),
                    dur_us: ev.at.saturating_sub(p.at).as_us_f64(),
                    pid,
                    tid: 1,
                    args: args(ev),
                    num_args: Vec::new(),
                }),
            }
            prev = Some(ev);
        }
    }

    events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));

    // Metadata first (ts 0): process and thread names.
    let mut meta = Vec::new();
    pids.sort_by_key(|(p, _)| *p);
    for (pid, name) in pids {
        meta.push(ChromeEvent {
            name: "process_name".to_string(),
            cat: "__metadata",
            ph: 'M',
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid: 0,
            args: vec![("name".to_string(), name)],
            num_args: Vec::new(),
        });
        for (tid, tname) in [(0, "cpu-ops"), (1, "packets")] {
            meta.push(ChromeEvent {
                name: "thread_name".to_string(),
                cat: "__metadata",
                ph: 'M',
                ts_us: 0.0,
                dur_us: 0.0,
                pid,
                tid,
                args: vec![("name".to_string(), tname.to_string())],
                num_args: Vec::new(),
            });
        }
    }
    meta.extend(events);
    meta
}

/// Track-group id for the metrics pseudo-process hosting counter tracks —
/// distinct from node pids (raw index) and switch pids (`1000 +`).
pub const METRICS_PID: u32 = 2000;

/// Renders every time series in a [`MetricsRegistry`] as Perfetto counter
/// tracks: one `'C'` event per sample, all under the `"metrics"`
/// pseudo-process ([`METRICS_PID`]), named by the series' canonical
/// metric name (`link.<a>-<b>.utilization`, `fabric.credit_stall_us`, …).
/// Events are sorted by timestamp so every track stays monotonic when the
/// list is appended to a [`chrome_events`] export.
pub fn counter_track_events(metrics: &MetricsRegistry) -> Vec<ChromeEvent> {
    let mut events = vec![ChromeEvent {
        name: "process_name".to_string(),
        cat: "__metadata",
        ph: 'M',
        ts_us: 0.0,
        dur_us: 0.0,
        pid: METRICS_PID,
        tid: 0,
        args: vec![("name".to_string(), "metrics".to_string())],
        num_args: Vec::new(),
    }];
    let mut samples = Vec::new();
    for (name, series) in metrics.all_series() {
        for s in series {
            samples.push(ChromeEvent {
                name: name.to_string(),
                cat: "metric",
                ph: 'C',
                ts_us: s.at.as_us_f64(),
                dur_us: 0.0,
                pid: METRICS_PID,
                tid: 0,
                args: Vec::new(),
                num_args: vec![("value".to_string(), s.value)],
            });
        }
    }
    // Stable sort: equal instants keep registration order; within one
    // series the samples were already time-ordered.
    samples.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    events.extend(samples);
    events
}

/// Renders a finite `f64` as a JSON number (`NaN`/`±inf` have no JSON
/// spelling and degrade to `0`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string escaping for controlled label/arg content.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes a Chrome trace-event list to the JSON object format
/// (`{"traceEvents": [...]}`) that `chrome://tracing` and Perfetto load.
pub fn chrome_trace_json(events: &[ChromeEvent]) -> String {
    let mut s = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.6},\"pid\":{},\"tid\":{}",
            json_escape(&ev.name),
            ev.cat,
            ev.ph,
            ev.ts_us,
            ev.pid,
            ev.tid
        );
        if ev.ph == 'X' {
            let _ = write!(s, ",\"dur\":{:.6}", ev.dur_us);
        }
        if ev.ph == 'i' {
            s.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() || !ev.num_args.is_empty() {
            s.push_str(",\"args\":{");
            let mut j = 0;
            for (k, v) in &ev.args {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
                j += 1;
            }
            for (k, v) in &ev.num_args {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{}", json_escape(k), fmt_f64(*v));
                j += 1;
            }
            s.push('}');
        }
        s.push('}');
    }
    s.push_str("\n]}\n");
    s
}

/// A human-readable aggregate of per-stage breakdowns: one line per
/// operation kind with the mean end-to-end latency and the mean time in
/// each stage (stages in first-seen order).
pub fn breakdown_report(breakdowns: &[OpBreakdown]) -> String {
    /// Per-kind aggregate: count, total latency, per-stage label -> total
    /// time (stages in first-seen order).
    type KindAgg = (u64, SimTime, Vec<(String, SimTime)>);
    let mut kinds: Vec<&'static str> = Vec::new();
    let mut agg: HashMap<&'static str, KindAgg> = HashMap::new();
    for b in breakdowns {
        let kind = b.op.kind.label();
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
        let entry = agg.entry(kind).or_insert((0, SimTime::ZERO, Vec::new()));
        entry.0 += 1;
        entry.1 += b.total();
        for seg in &b.segments {
            match entry.2.iter_mut().find(|(l, _)| *l == seg.label) {
                Some((_, t)) => *t += seg.dur,
                None => entry.2.push((seg.label.clone(), seg.dur)),
            }
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "per-operation stage breakdown (mean us per stage)");
    for kind in kinds {
        let (count, total, stages) = &agg[kind];
        let n = *count as f64;
        let _ = write!(
            s,
            "{:<14} x{:<5} total {:>8.3}",
            kind,
            count,
            total.as_us_f64() / n
        );
        for (label, t) in stages {
            let _ = write!(s, " | {} {:.3}", label, t.as_us_f64() / n);
        }
        s.push('\n');
    }
    s
}

/// Checks that `input` is one syntactically well-formed JSON value — a
/// dependency-free validator for smoke tests of the exporters.
pub fn json_is_wellformed(input: &str) -> bool {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let ok = parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    ok && pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    *pos > start
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return false;
                        }
                        *pos += 5;
                    }
                    _ => return false,
                }
            }
            _ => *pos += 1,
        }
    }
    false
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::trace::{OpKind, Stage};
    use tg_wire::NodeId;

    fn pe(at_ns: u64, trace: TraceId, site: Site, stage: Stage) -> PacketEvent {
        PacketEvent {
            at: SimTime::from_ns(at_ns),
            trace,
            parent: None,
            site,
            stage,
            kind: "write_req",
            bytes: 22,
        }
    }

    #[test]
    fn breakdown_segments_sum_to_end_to_end() {
        let req = TraceId::packet(NodeId::new(0), 0);
        let op = OpEvent {
            node: NodeId::new(0),
            kind: OpKind::RemoteWrite,
            start: SimTime::from_ns(100),
            end: SimTime::from_ns(900),
            trace: Some(req),
        };
        let packets = vec![
            pe(150, req, Site::Node(NodeId::new(0)), Stage::TxEnqueue),
            pe(200, req, Site::Node(NodeId::new(0)), Stage::TxLaunch),
            pe(400, req, Site::Switch(0), Stage::SwitchEnqueue),
            pe(450, req, Site::Switch(0), Stage::SwitchTx),
            pe(700, req, Site::Node(NodeId::new(1)), Stage::RxEnqueue),
            pe(750, req, Site::Node(NodeId::new(1)), Stage::Commit),
        ];
        let b = op_breakdowns(&[op], &packets);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].total(), SimTime::from_ns(800));
        assert_eq!(b[0].segments.last().unwrap().label, "cpu-complete");
        assert_eq!(b[0].segments.last().unwrap().dur, SimTime::from_ns(150));
    }

    #[test]
    fn breakdown_chains_response_packets() {
        let req = TraceId::packet(NodeId::new(0), 0);
        let resp = TraceId::packet(NodeId::new(1), 0);
        let op = OpEvent {
            node: NodeId::new(0),
            kind: OpKind::RemoteRead,
            start: SimTime::ZERO,
            end: SimTime::from_ns(1000),
            trace: Some(req),
        };
        let mut resp_ev = pe(500, resp, Site::Node(NodeId::new(1)), Stage::TxEnqueue);
        resp_ev.parent = Some(req);
        let packets = vec![
            pe(100, req, Site::Node(NodeId::new(0)), Stage::TxEnqueue),
            pe(400, req, Site::Node(NodeId::new(1)), Stage::Commit),
            resp_ev,
            pe(900, resp, Site::Node(NodeId::new(0)), Stage::Commit),
        ];
        let b = op_breakdowns(&[op], &packets);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].segments.len(), 5); // cpu-issue + 3 more + cpu-complete
        assert!(b[0].segments.iter().any(|s| s.label == "resp-commit"));
        assert_eq!(b[0].total(), SimTime::from_ns(1000));
    }

    #[test]
    fn breakdown_clips_events_outside_the_op_window() {
        let req = TraceId::packet(NodeId::new(0), 3);
        let op = OpEvent {
            node: NodeId::new(0),
            kind: OpKind::RemoteWrite,
            start: SimTime::from_ns(100),
            end: SimTime::from_ns(200),
            trace: Some(req),
        };
        // The commit lands after the CPU already moved on (write latency is
        // CPU-latch-only); it must clip to the window, not inflate it.
        let packets = vec![
            pe(150, req, Site::Node(NodeId::new(0)), Stage::TxEnqueue),
            pe(900, req, Site::Node(NodeId::new(1)), Stage::Commit),
        ];
        let b = op_breakdowns(&[op], &packets);
        assert_eq!(b[0].total(), SimTime::from_ns(100));
    }

    #[test]
    fn chrome_events_are_monotonic_per_track_and_json_parses() {
        let req = TraceId::packet(NodeId::new(0), 0);
        let ops = vec![OpEvent {
            node: NodeId::new(0),
            kind: OpKind::RemoteWrite,
            start: SimTime::from_ns(10),
            end: SimTime::from_ns(500),
            trace: Some(req),
        }];
        let packets = vec![
            pe(50, req, Site::Node(NodeId::new(0)), Stage::TxEnqueue),
            pe(90, req, Site::Node(NodeId::new(0)), Stage::TxLaunch),
            pe(200, req, Site::Switch(0), Stage::SwitchEnqueue),
            pe(230, req, Site::Switch(0), Stage::SwitchTx),
        ];
        let events = chrome_events(&ops, &packets);
        let mut last: HashMap<(u32, u32), f64> = HashMap::new();
        for ev in &events {
            let t = last.entry((ev.pid, ev.tid)).or_insert(0.0);
            assert!(ev.ts_us >= *t, "ts went backwards on a track");
            *t = ev.ts_us;
        }
        assert!(events.iter().any(|e| e.ph == 'M'));
        let json = chrome_trace_json(&events);
        assert!(json_is_wellformed(&json), "exporter emitted invalid JSON");
    }

    #[test]
    fn report_aggregates_by_kind() {
        let req = TraceId::packet(NodeId::new(0), 0);
        let op = OpEvent {
            node: NodeId::new(0),
            kind: OpKind::RemoteWrite,
            start: SimTime::ZERO,
            end: SimTime::from_ns(600),
            trace: Some(req),
        };
        let packets = vec![pe(200, req, Site::Node(NodeId::new(0)), Stage::TxEnqueue)];
        let report = breakdown_report(&op_breakdowns(&[op], &packets));
        assert!(report.contains("remote-write"));
        assert!(report.contains("cpu-complete"));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        assert!(json_is_wellformed("{}"));
        assert!(json_is_wellformed(
            "{\"a\":[1,2.5,-3e2],\"b\":\"x\\n\",\"c\":null,\"d\":true}"
        ));
        assert!(json_is_wellformed("  [1, 2, 3]  "));
        assert!(!json_is_wellformed("{\"a\":}"));
        assert!(!json_is_wellformed("[1,2,"));
        assert!(!json_is_wellformed("\"unterminated"));
        assert!(!json_is_wellformed("{} extra"));
        assert!(!json_is_wellformed("01x"));
    }
}
