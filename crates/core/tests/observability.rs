//! End-to-end observability: packet-lifecycle tracing, per-stage latency
//! breakdowns, congestion metrics and the Chrome trace-event export.

use std::collections::HashMap;

use telegraphos::observe::{
    breakdown_report, chrome_events, chrome_trace_json, json_is_wellformed,
};
use telegraphos::{Action, Cluster, ClusterBuilder, ComponentDetail, Script};
use tg_sim::{MetricsRegistry, SimTime};
use tg_wire::trace::{OpKind, Stage};

/// Two nodes; node 0 exercises remote writes, a blocking read and an
/// atomic against a page homed on node 1.
fn traced_cluster() -> (
    Cluster,
    telegraphos::TraceCollector,
    telegraphos::SharedPage,
) {
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    let collector = cluster.enable_tracing();
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Write(page.va(0), 7),
            Action::Fence,
            Action::Read(page.va(0)),
            Action::FetchAdd(page.va(8), 5),
            Action::Write(page.va(16), 9),
            Action::Fence,
        ]),
    );
    (cluster, collector, page)
}

#[test]
fn tracing_records_full_packet_lifecycles() {
    let (mut cluster, collector, page) = traced_cluster();
    cluster.run();
    assert!(cluster.all_halted());
    assert_eq!(cluster.read_shared(&page, 0), 7);

    let packets = collector.packet_events();
    assert!(!packets.is_empty(), "no packet events recorded");
    // Every stage of the request path shows up for at least one packet.
    for stage in [
        Stage::TxEnqueue,
        Stage::TxLaunch,
        Stage::SwitchEnqueue,
        Stage::SwitchTx,
        Stage::RxEnqueue,
        Stage::RxStart,
        Stage::Commit,
    ] {
        assert!(
            packets.iter().any(|p| p.stage == stage),
            "no event for stage {stage}"
        );
    }
    // Events arrive in non-decreasing time order (engine delivery order).
    for w in packets.windows(2) {
        assert!(w[0].at <= w[1].at, "packet events out of order");
    }
    // Responses are chained to their requests.
    assert!(
        packets.iter().any(|p| p.parent.is_some()),
        "no response was chained to a request"
    );
}

#[test]
fn op_events_reconcile_with_node_stats() {
    let (mut cluster, collector, _page) = traced_cluster();
    cluster.run();

    let ops = collector.op_events();
    let st = cluster.node(0).stats();
    let mut sums: HashMap<&'static str, (u64, f64)> = HashMap::new();
    for op in &ops {
        assert_eq!(op.node.raw(), 0, "only node 0 issues ops");
        let e = sums.entry(op.kind.label()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += op.end.saturating_sub(op.start).as_us_f64();
    }
    for (label, summary) in [
        (OpKind::RemoteWrite.label(), &st.remote_writes),
        (OpKind::RemoteRead.label(), &st.remote_reads),
        (OpKind::Atomic.label(), &st.atomics),
        (OpKind::Fence.label(), &st.fences),
    ] {
        let (count, sum_us) = sums.get(label).copied().unwrap_or((0, 0.0));
        assert_eq!(count, summary.count(), "{label}: op-event count mismatch");
        let want = summary.mean() * summary.count() as f64;
        assert!(
            (sum_us - want).abs() <= 1e-6 * (1.0 + want.abs()),
            "{label}: probe total {sum_us}us vs NodeStats {want}us"
        );
    }
}

#[test]
fn breakdowns_telescope_to_end_to_end_latency() {
    let (mut cluster, collector, _page) = traced_cluster();
    cluster.run();

    let breakdowns = collector.breakdowns();
    // Remote writes, the read and the atomic all injected traceable
    // requests.
    assert!(
        breakdowns.len() >= 4,
        "expected breakdowns, got {}",
        breakdowns.len()
    );
    for b in &breakdowns {
        assert_eq!(
            b.total(),
            b.op.end.saturating_sub(b.op.start),
            "breakdown of {} does not telescope",
            b.op.kind
        );
    }
    // The blocking read's breakdown reaches the remote commit and comes
    // back: it must contain both request and response segments.
    let read = breakdowns
        .iter()
        .find(|b| b.op.kind == OpKind::RemoteRead)
        .expect("a remote-read breakdown");
    assert!(read.segments.iter().any(|s| s.label == "commit"));
    assert!(read.segments.iter().any(|s| s.label.starts_with("resp-")));

    let report = breakdown_report(&breakdowns);
    assert!(report.contains("remote-read"));
    assert!(report.contains("cpu-complete"));
}

#[test]
fn chrome_export_is_wellformed_and_monotonic_per_track() {
    let (mut cluster, collector, _page) = traced_cluster();
    cluster.run();

    let events = chrome_events(&collector.op_events(), &collector.packet_events());
    assert!(events.iter().any(|e| e.ph == 'M'), "no track metadata");
    assert!(events.iter().any(|e| e.ph == 'X'), "no spans");
    let mut last: HashMap<(u32, u32), f64> = HashMap::new();
    for ev in &events {
        let t = last.entry((ev.pid, ev.tid)).or_insert(0.0);
        assert!(ev.ts_us >= *t, "ts went backwards on a track");
        *t = ev.ts_us;
    }
    let json = chrome_trace_json(&events);
    assert!(json_is_wellformed(&json), "export is not valid JSON");
    assert!(json.contains("\"traceEvents\""));
}

#[test]
fn component_stats_surface_congestion_detail() {
    let (mut cluster, _collector, _page) = traced_cluster();
    cluster.run();

    let reports = cluster.component_stats();
    assert_eq!(reports.len(), 3, "2 nodes + 1 switch");
    let mut saw_node1_rx = false;
    for r in &reports {
        match &r.detail {
            ComponentDetail::Node {
                rx_fifo_high_water,
                rx_fifo_depth,
                tx_queue_depth,
                ..
            } => {
                // Queues drained at end of run.
                assert_eq!(*rx_fifo_depth, 0);
                assert_eq!(*tx_queue_depth, 0);
                if r.name == "node1" {
                    assert!(*rx_fifo_high_water >= 1, "node1 never queued an rx packet");
                    saw_node1_rx = true;
                }
            }
            ComponentDetail::Switch {
                packets,
                fifo_high_water,
                fifo_depth,
                ..
            } => {
                assert!(*packets > 0, "switch forwarded nothing");
                assert!(*fifo_high_water >= 1);
                assert_eq!(*fifo_depth, 0);
            }
        }
        assert!(r.events.delivered > 0, "{} handled no events", r.name);
    }
    assert!(saw_node1_rx);
}

#[test]
fn run_sampled_populates_the_metrics_registry() {
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Write(page.va(0), 1),
            Action::Fence,
            Action::Read(page.va(0)),
        ]),
    );
    let mut metrics = MetricsRegistry::new();
    cluster.run_sampled(SimTime::from_us(1), &mut metrics);
    assert!(cluster.all_halted());

    let samples = metrics
        .series_by_name("fabric.bytes_total")
        .expect("series registered");
    assert!(!samples.is_empty(), "no samples recorded");
    // Cumulative byte counts never decrease and end positive.
    for w in samples.windows(2) {
        assert!(w[0].value <= w[1].value);
        assert!(w[0].at <= w[1].at);
    }
    assert!(samples.last().unwrap().value > 0.0);

    assert_eq!(metrics.counter_by_name("node0.remote_writes"), Some(1));
    assert!(metrics.series_by_name("node0.rx_fifo_depth").is_some());
}

#[test]
fn tracing_off_records_nothing_and_costs_nothing_visible() {
    // Same workload, no probe: results identical, no events anywhere.
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page.va(0), 7), Action::Fence]),
    );
    cluster.run();
    assert_eq!(cluster.read_shared(&page, 0), 7);
}
