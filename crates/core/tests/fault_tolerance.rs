//! Fault-tolerance regressions at the full-cluster level: fault masking
//! (same memory and operation counts as a fault-free run), the
//! no-progress watchdog naming a dead link, conservation checks catching
//! a leaked credit, and fence completion surviving a retransmit storm.

use telegraphos::{Action, ClusterBuilder, FaultPlan, LinkId, RelParams, Script, WatchdogOutcome};
use tg_sim::SimTime;
use tg_wire::trace::Site;
use tg_wire::NodeId;

fn victim_uplink(node: u16) -> LinkId {
    LinkId::new(Site::Node(NodeId::new(node)), Site::Switch(0))
}

/// A ping-pong workload under drop + corruption faults finishes with the
/// same memory contents and the same per-node operation counts as the
/// fault-free run — the link layer fully masks the lossy fabric.
#[test]
fn faulted_run_matches_fault_free_outcome() {
    let script = |page: &telegraphos::SharedPage| {
        let mut acts = Vec::new();
        for i in 0..50u64 {
            acts.push(Action::Write(page.va((i % 16) * 8), i));
        }
        acts.push(Action::Fence);
        for i in 0..10u64 {
            acts.push(Action::Read(page.va((i % 16) * 8)));
        }
        Script::new(acts)
    };

    let run = |plan: Option<FaultPlan>| {
        let mut b = ClusterBuilder::new(2).reliable_links(RelParams::default());
        if let Some(p) = plan {
            b = b.with_faults(p);
        }
        let mut cluster = b.build();
        let page = cluster.alloc_shared(1);
        cluster.set_process(0, script(&page));
        cluster.run();
        let mem: Vec<u64> = (0..16).map(|w| cluster.read_shared(&page, w)).collect();
        let st = cluster.node(0).stats();
        (
            mem,
            st.remote_writes.count(),
            st.remote_reads.count(),
            st.fences.count(),
            cluster.fabric_retransmits(),
            cluster.conservation_violations(),
        )
    };

    let (mem0, w0, r0, f0, retx0, cons0) = run(None);
    assert_eq!(retx0, 0, "lossless run must not retransmit");
    assert!(
        cons0.is_empty(),
        "lossless run broke conservation: {cons0:?}"
    );

    let plan = FaultPlan::new(0xFEED_FACE).drop(0.2).corrupt(0.1);
    let (mem1, w1, r1, f1, retx1, cons1) = run(Some(plan));
    assert_eq!(mem1, mem0, "faults changed memory contents");
    assert_eq!(
        (w1, r1, f1),
        (w0, r0, f0),
        "faults changed operation counts"
    );
    assert!(retx1 > 0, "a 20% drop rate must force retransmissions");
    assert!(
        cons1.is_empty(),
        "faulted run broke conservation: {cons1:?}"
    );
}

/// A permanently dead uplink stops all progress; the watchdog must stop
/// the run and name the dead link in its report instead of panicking or
/// spinning.
#[test]
fn watchdog_names_a_permanently_dead_link() {
    let plan = FaultPlan::new(0xBAD11).permanent_outage(victim_uplink(0), SimTime::ZERO);
    // A small retry budget so the link is declared dead (rather than
    // still mid-storm) by the time the watchdog window closes.
    let params = RelParams {
        max_retries: 5,
        ..RelParams::default()
    };
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(params)
        .with_faults(plan)
        .build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page.va(0), 7), Action::Fence]),
    );
    let report = cluster
        .run_watchdog(SimTime::from_us(500))
        .expect_err("a dead link must trip the watchdog");
    assert!(
        report.dead_links().contains(&victim_uplink(0)),
        "report does not name the dead link: {report}"
    );
    assert!(
        report.nodes.iter().any(|n| n.node == NodeId::new(0)),
        "report does not name the stuck node: {report}"
    );
    // The degradation was also surfaced as a structured error + interrupt.
    assert!(
        cluster
            .link_errors()
            .iter()
            .any(|(who, e)| who == "node0"
                && matches!(e, telegraphos::LinkError::RetryExhausted { .. })),
        "no structured dead-link error: {:?}",
        cluster.link_errors()
    );
    assert!(
        cluster.node(0).stats().link_failures > 0,
        "the OS never saw a link-failure interrupt"
    );
}

/// A fault-free run under the watchdog simply drains.
#[test]
fn watchdog_is_silent_on_a_healthy_run() {
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page.va(0), 1), Action::Fence]),
    );
    let outcome = cluster
        .run_watchdog(SimTime::from_us(100))
        .expect("healthy run must not trip the watchdog");
    assert_eq!(outcome, WatchdogOutcome::Drained);
}

/// A credit leaked on the wire is caught by the traffic-quiescent
/// conservation check, naming the starved link instead of silently
/// shrinking the fabric's capacity. (Left to itself the periodic resync
/// probe would eventually reclaim the credit — the huge timeouts here
/// keep that recovery far in the future: the probe interval is derived
/// from the adaptive RTO, so the RTO clamps must be pinned high along
/// with the resync ceiling. The bounded run then inspects the ledgers
/// while the leak is live.)
#[test]
fn conservation_check_catches_a_leaked_credit() {
    // Lose every credit return; one write is enough to strand one credit.
    let params = RelParams {
        resync_timeout: SimTime::from_us(1_000_000),
        rto_min: SimTime::from_us(1_000_000),
        rto_max: SimTime::from_us(1_000_000),
        ..RelParams::default()
    };
    let plan = FaultPlan::new(0xC4ED17).credit_loss(1.0);
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(params)
        .with_faults(plan)
        .build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page.va(0), 9), Action::Fence]),
    );
    // All real traffic settles within a millisecond; the resync probe is
    // still 999ms out.
    cluster.run_until(SimTime::from_us(1_000));
    let violations = cluster.conservation_violations();
    assert!(
        violations.iter().any(|v| v.contains("credit leak")),
        "leaked credit not caught: {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.contains("node0->switch0") || v.contains("switch0->node1")),
        "violation does not name a culprit link: {violations:?}"
    );
    assert!(
        cluster
            .fault_stats()
            .expect("injector installed")
            .credits_lost
            > 0,
        "the plan never actually lost a credit"
    );
}

/// FENCE semantics survive a retransmit storm: the outstanding-operation
/// counters drain to zero and the fence completes even when every other
/// frame needs recovery.
#[test]
fn fence_drains_after_a_retransmit_storm() {
    let plan = FaultPlan::new(0x57012).drop(0.4).corrupt(0.2);
    let mut cluster = ClusterBuilder::new(2).with_faults(plan).build();
    let page = cluster.alloc_shared(1);
    let mut acts: Vec<Action> = (0..100u64)
        .map(|i| Action::Write(page.va((i % 32) * 8), i + 1))
        .collect();
    acts.push(Action::Fence);
    acts.push(Action::Read(page.va(0)));
    cluster.set_process(0, Script::new(acts));
    cluster.run();
    let st = cluster.node(0).stats();
    assert_eq!(st.fences.count(), 1, "the fence never completed");
    assert!(st.halted_at.is_some(), "the process never halted");
    assert!(
        cluster.fabric_retransmits() > 0,
        "storm too weak to exercise retransmission"
    );
    assert!(
        cluster.conservation_violations().is_empty(),
        "storm broke conservation: {:?}",
        cluster.conservation_violations()
    );
    // All writes landed despite the storm.
    for w in 0..32u64 {
        assert!(cluster.read_shared(&page, w) != 0, "word {w} lost");
    }
}

/// Identical builder + identical fault seed replays the exact same
/// simulation: same final time, same stats, same fault tallies.
#[test]
fn identical_fault_seeds_replay_identically() {
    let run = || {
        let plan = FaultPlan::new(0xD0_0D1E).drop(0.25).corrupt(0.05);
        let mut cluster = ClusterBuilder::new(3).with_faults(plan).build();
        let page = cluster.alloc_shared(2);
        cluster.set_process(
            0,
            Script::new(
                (0..40u64)
                    .map(|i| Action::Write(page.va((i % 8) * 8), i))
                    .chain([Action::Fence])
                    .collect(),
            ),
        );
        cluster.set_process(
            1,
            Script::new(
                (0..40u64)
                    .map(|i| Action::Write(page.va(64 + (i % 8) * 8), i))
                    .chain([Action::Fence])
                    .collect(),
            ),
        );
        cluster.run();
        (
            cluster.now(),
            cluster.fabric_retransmits(),
            cluster.fault_stats().unwrap(),
            cluster.node(0).stats().remote_writes.count(),
        )
    };
    assert_eq!(run(), run(), "seeded cluster replay diverged");
}
