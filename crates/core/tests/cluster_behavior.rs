//! Full-system behavioral tests: the paper's programming model running on
//! the simulated cluster end to end.

use telegraphos::sync::{BarrierWait, LockAcquire, LockRelease, SyncStep};
use telegraphos::{Action, ClusterBuilder, Process, ReplicatePolicy, Resume, Script, SharedPage};
use tg_hib::{HibConfig, LaunchMode};
use tg_net::Topology;
use tg_sim::SimTime;
use tg_wire::TimingConfig;

#[test]
fn remote_write_latency_matches_paper() {
    // §3.2: 10 000 remote writes average 0.70 us each.
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    let writes: Vec<Action> = (0..1000)
        .map(|i| Action::Write(page.va((i % 1024) * 8), i))
        .collect();
    cluster.set_process(0, Script::new(writes));
    cluster.run();
    let mean = cluster.node(0).stats().remote_writes.mean();
    assert!(
        (0.60..0.80).contains(&mean),
        "remote write mean {mean:.3} us, expected ~0.70"
    );
}

#[test]
fn remote_read_latency_matches_paper() {
    // §3.2: remote reads take 7.2 us.
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    let reads: Vec<Action> = (0..100).map(|i| Action::Read(page.va(i * 8))).collect();
    cluster.set_process(0, Script::new(reads));
    cluster.run();
    let mean = cluster.node(0).stats().remote_reads.mean();
    assert!(
        (6.7..7.7).contains(&mean),
        "remote read mean {mean:.3} us, expected ~7.2"
    );
}

#[test]
fn short_write_bursts_issue_at_bus_speed() {
    // §3.2: a burst of 100 writes takes < 50 us (< 0.5 us each) because the
    // HIB queue absorbs it at TurboChannel speed.
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    let writes: Vec<Action> = (0..100).map(|i| Action::Write(page.va(i * 8), i)).collect();
    cluster.set_process(0, Script::new(writes));
    cluster.run();
    let halted = cluster.node(0).stats().halted_at.expect("halted");
    assert!(
        halted < SimTime::from_us(50),
        "burst of 100 writes took {halted}"
    );
}

#[test]
fn values_actually_arrive() {
    let mut cluster = ClusterBuilder::new(3).build();
    let page = cluster.alloc_shared(2);
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Write(page.va(0), 111),
            Action::Write(page.va(8), 222),
            Action::Fence,
        ]),
    );
    cluster.set_process(1, Script::new(vec![Action::Write(page.va(16), 333)]));
    cluster.run();
    assert_eq!(cluster.read_shared(&page, 0), 111);
    assert_eq!(cluster.read_shared(&page, 1), 222);
    assert_eq!(cluster.read_shared(&page, 2), 333);
}

#[test]
fn remote_reads_return_fresh_values() {
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    cluster
        .node_mut(1)
        .segment_write(tg_wire::GOffset::from_page(page.home_page, 40), 4242);
    let mut script = Script::new(vec![Action::Read(page.va(40))]);
    // Run and capture through the script's value log.
    cluster.set_process(0, {
        // Move the script in; read back via node stats after run.
        script.resume(Resume::Start); // consume the first action for setup? no-op style check
        Script::new(vec![Action::Read(page.va(40)), Action::Read(page.va(48))])
    });
    cluster.run();
    // First read sees the preloaded value; second reads an unwritten word.
    // (Scripts do not expose state once moved, so verify via home memory +
    // latency stats.)
    assert_eq!(cluster.read_shared(&page, 5), 4242);
    assert_eq!(cluster.node(0).stats().remote_reads.count(), 2);
}

/// A two-node atomic counter race: both nodes fetch_add a word on node 0's
/// segment; the total must be exact.
#[test]
fn atomic_fetch_add_is_atomic_under_contention() {
    for launch in [LaunchMode::SpecialModePal, LaunchMode::ContextShadow] {
        let hib = if launch == LaunchMode::SpecialModePal {
            HibConfig::telegraphos_i()
        } else {
            HibConfig::telegraphos_ii()
        };
        let mut cluster = ClusterBuilder::new(3).hib_config(hib).build();
        let page = cluster.alloc_shared(0);
        let per_node = 50u64;
        for n in [1u16, 2u16] {
            let adds: Vec<Action> = (0..per_node)
                .map(|_| Action::FetchAdd(page.va(0), 1))
                .collect();
            cluster.set_process(n, Script::new(adds));
        }
        cluster.run();
        assert_eq!(
            cluster.read_shared(&page, 0),
            2 * per_node,
            "lost updates with {launch:?}"
        );
    }
}

#[test]
fn compare_and_swap_round_trip() {
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new(vec![
            Action::CompareSwap(page.va(0), 0, 5), // succeeds
            Action::CompareSwap(page.va(0), 0, 9), // fails (now 5)
        ]),
    );
    cluster.run();
    assert_eq!(cluster.read_shared(&page, 0), 5);
}

#[test]
fn remote_copy_moves_a_block() {
    let mut cluster = ClusterBuilder::new(2).build();
    let src = cluster.alloc_shared(1);
    let dst = cluster.alloc_shared(0);
    for w in 0..32u64 {
        cluster
            .node_mut(1)
            .segment_write(tg_wire::GOffset::from_page(src.home_page, w * 8), 900 + w);
    }
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Copy {
                from: src.va(0),
                to: dst.va(0),
                words: 32,
            },
            Action::Fence, // completion detection for the non-blocking copy
        ]),
    );
    cluster.run();
    for w in 0..32u64 {
        assert_eq!(cluster.read_shared(&dst, w), 900 + w, "word {w}");
    }
}

/// Locked increments from two nodes: read-modify-write under a spinlock
/// must not lose updates even though the increment is not atomic.
struct LockedIncrements {
    lock: tg_mem::VAddr,
    data: tg_mem::VAddr,
    remaining: u32,
    phase: Phase,
    acq: LockAcquire,
    rel: LockRelease,
    temp: u64,
}

enum Phase {
    Acquiring,
    ReadData,
    WriteData,
    Releasing,
}

impl LockedIncrements {
    fn new(lock: tg_mem::VAddr, data: tg_mem::VAddr, n: u32) -> Self {
        LockedIncrements {
            lock,
            data,
            remaining: n,
            phase: Phase::Acquiring,
            acq: LockAcquire::new(lock),
            rel: LockRelease::new(lock),
            temp: 0,
        }
    }
}

impl Process for LockedIncrements {
    fn resume(&mut self, r: Resume) -> Action {
        match self.phase {
            Phase::Acquiring => match self.acq.step(r) {
                SyncStep::Do(a) => a,
                SyncStep::Ready => {
                    self.phase = Phase::ReadData;
                    Action::Read(self.data)
                }
            },
            Phase::ReadData => {
                self.temp = r.value();
                self.phase = Phase::WriteData;
                Action::Write(self.data, self.temp + 1)
            }
            Phase::WriteData => {
                self.phase = Phase::Releasing;
                self.rel = LockRelease::new(self.lock);
                match self.rel.step(Resume::Start) {
                    SyncStep::Do(a) => a,
                    SyncStep::Ready => unreachable!("release starts with a fence"),
                }
            }
            Phase::Releasing => match self.rel.step(r) {
                SyncStep::Do(a) => a,
                SyncStep::Ready => unreachable!("release has no terminal step"),
            },
        }
    }
}

// The release machine issues Fence then Write(lock, 0); after the write
// completes we must decide: next iteration or halt.
struct LockedLoop {
    inner: LockedIncrements,
    released_steps: u8,
}

impl Process for LockedLoop {
    fn resume(&mut self, r: Resume) -> Action {
        if matches!(self.inner.phase, Phase::Releasing) {
            // Count the two release steps (fence done, write done).
            self.released_steps += 1;
            if self.released_steps == 2 {
                self.released_steps = 0;
                self.inner.remaining -= 1;
                if self.inner.remaining == 0 {
                    return Action::Halt;
                }
                self.inner.phase = Phase::Acquiring;
                self.inner.acq = LockAcquire::new(self.inner.lock);
                return self.inner.resume(Resume::Start);
            }
        }
        self.inner.resume(r)
    }
}

#[test]
fn spinlock_protects_read_modify_write() {
    let mut cluster = ClusterBuilder::new(3).build();
    let page = cluster.alloc_shared(0);
    let lock = page.va(0);
    let data = page.va(8);
    let per_node = 10u32;
    for n in [1u16, 2u16] {
        cluster.set_process(
            n,
            LockedLoop {
                inner: LockedIncrements::new(lock, data, per_node),
                released_steps: 0,
            },
        );
    }
    cluster.run();
    assert_eq!(
        cluster.read_shared(&page, 1),
        u64::from(2 * per_node),
        "locked increments lost updates"
    );
    assert_eq!(cluster.read_shared(&page, 0), 0, "lock released");
}

/// Barrier: all nodes arrive, then proceed. Each node writes its rank
/// after the barrier; the last arriver's pre-barrier write must be visible
/// to everyone after it.
struct BarrierThenRead {
    barrier: BarrierWait,
    data: tg_mem::VAddr,
    out: tg_mem::VAddr,
    phase: u8,
}

impl Process for BarrierThenRead {
    fn resume(&mut self, r: Resume) -> Action {
        match self.phase {
            0 => match self.barrier.step(r) {
                SyncStep::Do(a) => a,
                SyncStep::Ready => {
                    self.phase = 1;
                    Action::Read(self.data)
                }
            },
            1 => {
                self.phase = 2;
                Action::Write(self.out, r.value())
            }
            _ => Action::Halt,
        }
    }
}

#[test]
fn barrier_orders_data_publication() {
    let n = 4u16;
    let mut cluster = ClusterBuilder::new(n).build();
    let page = cluster.alloc_shared(0);
    let counter = page.va(0);
    let sense = page.va(8);
    let data = page.va(16);
    // Node 0 publishes data before arriving; others read it after.
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(data, 777), Action::Fence]).into_chain(
            counter,
            sense,
            n,
            page.va(24),
            data,
        ),
    );
    for i in 1..n {
        cluster.set_process(
            i,
            BarrierThenRead {
                barrier: BarrierWait::new(counter, sense, u64::from(n), 0),
                data,
                out: page.va(24 + u64::from(i) * 8),
                phase: 0,
            },
        );
    }
    cluster.run();
    for i in 1..n {
        assert_eq!(
            cluster.read_shared(&page, 3 + u64::from(i)),
            777,
            "node {i} missed the pre-barrier publication"
        );
    }
}

/// Helper: compose a publishing script with a barrier + read + writeback.
trait IntoChain {
    fn into_chain(
        self,
        counter: tg_mem::VAddr,
        sense: tg_mem::VAddr,
        n: u16,
        out: tg_mem::VAddr,
        data: tg_mem::VAddr,
    ) -> ChainProc;
}

impl IntoChain for Script {
    fn into_chain(
        self,
        counter: tg_mem::VAddr,
        sense: tg_mem::VAddr,
        n: u16,
        out: tg_mem::VAddr,
        data: tg_mem::VAddr,
    ) -> ChainProc {
        ChainProc {
            script: self,
            after: BarrierThenRead {
                barrier: BarrierWait::new(counter, sense, u64::from(n), 0),
                data,
                out,
                phase: 0,
            },
            in_script: true,
        }
    }
}

struct ChainProc {
    script: Script,
    after: BarrierThenRead,
    in_script: bool,
}

impl Process for ChainProc {
    fn resume(&mut self, r: Resume) -> Action {
        if self.in_script {
            let a = self.script.resume(r);
            if a != Action::Halt {
                return a;
            }
            self.in_script = false;
            return self.after.resume(Resume::Start);
        }
        self.after.resume(r)
    }
}

// ---------------------------------------------------------------------
// Coherent replication (§2.3) at full system scale
// ---------------------------------------------------------------------

fn coherent_setup(n: u16) -> (telegraphos::Cluster, SharedPage) {
    let mut cluster = ClusterBuilder::new(n).build();
    let page = cluster.alloc_shared(0);
    let copies: Vec<u16> = (1..n).collect();
    cluster.make_coherent(&page, &copies);
    (cluster, page)
}

#[test]
fn coherent_writes_converge_across_copies() {
    let (mut cluster, page) = coherent_setup(4);
    // Concurrent writers on different words.
    for n in 0..4u16 {
        let writes: Vec<Action> = (0..8)
            .map(|k| Action::Write(page.va(u64::from(n) * 64 + k * 8), u64::from(n) * 100 + k))
            .collect();
        cluster.set_process(n, Script::new(writes));
    }
    cluster.run();
    // Every copy agrees with the owner for every written word.
    for n in 0..4u16 {
        for k in 0..8u64 {
            let word = u64::from(n) * 8 + k;
            let expect = u64::from(n) * 100 + k;
            assert_eq!(cluster.read_shared(&page, word), expect, "owner w{word}");
        }
    }
    // Copies: read each replica frame via the node's mapped va... verified
    // through a second phase of local reads instead:
    let (mut cluster, page) = coherent_setup(3);
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page.va(0), 5), Action::Fence]),
    );
    cluster.run();
    // Now node 2 reads its local copy — must be 5 without network traffic.
    let before = cluster.node(2).hib_stats().remote_reads;
    cluster.set_process(2, Script::new(vec![Action::Read(page.va(0))]));
    cluster.run();
    assert_eq!(cluster.node(2).hib_stats().remote_reads, before);
    assert_eq!(cluster.node(2).stats().local_reads.count(), 1);
}

#[test]
fn coherent_racing_writers_still_converge() {
    let (mut cluster, page) = coherent_setup(3);
    // Both non-owner nodes hammer the same word.
    for n in [1u16, 2u16] {
        let writes: Vec<Action> = (0..20)
            .map(|k| Action::Write(page.va(0), u64::from(n) * 1000 + k))
            .collect();
        cluster.set_process(n, Script::new(writes));
    }
    cluster.run();
    let owner_val = cluster.read_shared(&page, 0);
    // All copies converge to the owner's serialization result.
    let frame1 = replica_frame(&mut cluster, &page, 1);
    let frame2 = replica_frame(&mut cluster, &page, 2);
    assert_eq!(cluster.read_local_frame(1, frame1, 0), owner_val);
    assert_eq!(cluster.read_local_frame(2, frame2, 0), owner_val);
}

/// Finds the local frame a coherent copy lives in by asking the MMU.
fn replica_frame(
    cluster: &mut telegraphos::Cluster,
    page: &SharedPage,
    node: u16,
) -> tg_wire::PageNum {
    let pte = cluster
        .node_mut(node)
        .mmu_mut()
        .table()
        .lookup(page.vpage())
        .expect("mapped replica");
    match pte.base.decode() {
        tg_mem::Decoded::LocalShared { off } => off.page(),
        other => panic!("replica not local: {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Eager multicast (§2.2.7)
// ---------------------------------------------------------------------

#[test]
fn eager_multicast_delivers_to_consumers() {
    let mut cluster = ClusterBuilder::new(3).build();
    let page = cluster.alloc_shared(0);
    cluster.make_eager(&page, &[1, 2]);
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Write(page.va(0), 10),
            Action::Write(page.va(8), 20),
            Action::Fence,
        ]),
    );
    cluster.run();
    // Consumers read locally (no remote read traffic).
    for c in [1u16, 2u16] {
        let frame = replica_frame(&mut cluster, &page, c);
        assert_eq!(cluster.read_local_frame(c, frame, 0), 10);
        assert_eq!(cluster.read_local_frame(c, frame, 1), 20);
    }
}

// ---------------------------------------------------------------------
// Fence and consistency (§2.3.5)
// ---------------------------------------------------------------------

/// Spins on a local flag, then reads remote data once the flag flips.
struct FlagConsumer {
    flag: tg_mem::VAddr,
    data: tg_mem::VAddr,
    out: tg_mem::VAddr,
    phase: u8,
}

impl Process for FlagConsumer {
    fn resume(&mut self, r: Resume) -> Action {
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Read(self.flag)
            }
            1 => {
                if r.value() == 1 {
                    self.phase = 2;
                    Action::Read(self.data)
                } else {
                    self.phase = 0;
                    Action::Compute(SimTime::from_ns(200))
                }
            }
            2 => {
                self.phase = 3;
                Action::Write(self.out, r.value())
            }
            _ => Action::Halt,
        }
    }
}

/// Builds the §2.3.5 scenario on coherent replicas with *different
/// owners*: data is owned far away (node 5), the flag nearby (node 1), and
/// both are replicated at the producer (node 0) and consumer (node 2).
/// Reflected writes for the two pages come from different sources, so the
/// fabric's per-source ordering cannot save an unfenced producer.
fn fence_scenario(with_fence: bool) -> u64 {
    let topo = Topology::chain(6);
    let mut cluster = ClusterBuilder::new(6).topology(topo).build();
    let data_page = cluster.alloc_shared(5);
    let flag_page = cluster.alloc_shared(1);
    let out_page = cluster.alloc_shared(2);
    cluster.make_coherent(&data_page, &[0, 2]);
    cluster.make_coherent(&flag_page, &[0, 2]);
    let mut producer = vec![Action::Write(data_page.va(0), 42)];
    if with_fence {
        producer.push(Action::Fence);
    }
    producer.push(Action::Write(flag_page.va(0), 1));
    cluster.set_process(0, Script::new(producer));
    cluster.set_process(
        2,
        FlagConsumer {
            flag: flag_page.va(0),
            data: data_page.va(0),
            out: out_page.va(0),
            phase: 0,
        },
    );
    cluster.run();
    cluster.read_shared(&out_page, 0)
}

#[test]
fn fence_prevents_stale_reads() {
    assert_eq!(fence_scenario(true), 42, "fenced producer is safe");
}

#[test]
fn without_fence_the_race_exists() {
    // The flag's owner is four switches closer than the data's, so the
    // unfenced producer lets the consumer read stale data — the exact
    // §2.3.5 hazard. (The simulator is deterministic, so this race
    // reproduces reliably.)
    let stale = fence_scenario(false);
    assert_eq!(
        stale, 0,
        "expected the stale read the paper warns about, got {stale}"
    );
}

// ---------------------------------------------------------------------
// Page-access counters and alarm replication (§2.2.6)
// ---------------------------------------------------------------------

#[test]
fn alarm_replication_localizes_a_hot_page() {
    let mut cluster = ClusterBuilder::new(2)
        .replicate_policy(ReplicatePolicy::OnAlarm)
        .build();
    let page = cluster.alloc_shared(1);
    cluster
        .node_mut(1)
        .segment_write(tg_wire::GOffset::from_page(page.home_page, 0), 1234);
    cluster.arm_counters(0, &page, 5, 1000);
    // 40 hot reads: first ~5 remote, alarm fires, page replicates, rest local.
    let reads: Vec<Action> = (0..40)
        .flat_map(|_| {
            [
                Action::Read(page.va(0)),
                Action::Compute(SimTime::from_us(30)),
            ]
        })
        .collect();
    cluster.set_process(0, Script::new(reads));
    cluster.run();
    let stats = cluster.node(0).stats();
    assert!(stats.replications >= 1, "no replication happened");
    assert!(
        stats.local_reads.count() > 20,
        "reads did not become local: {} local / {} remote",
        stats.local_reads.count(),
        stats.remote_reads.count()
    );
    assert!(
        stats.remote_reads.count() < 20,
        "too many remote reads: {}",
        stats.remote_reads.count()
    );
    // And local reads are much faster than remote ones.
    assert!(stats.local_reads.mean() < stats.remote_reads.mean() / 2.0);
}

// ---------------------------------------------------------------------
// VSM baseline (software shared memory)
// ---------------------------------------------------------------------

#[test]
fn vsm_read_and_write_faults_resolve() {
    let mut cluster = ClusterBuilder::new(3).build();
    let page = cluster.alloc_shared(0);
    cluster
        .node_mut(0)
        .segment_write(tg_wire::GOffset::from_page(page.home_page, 0), 55);
    cluster.make_vsm(&page);
    // Node 1 reads (read fault, page fetch), then writes (write fault,
    // invalidations), then node 2 reads the new value from node 1.
    cluster.set_process(
        1,
        Script::new(vec![
            Action::Read(page.va(0)),
            Action::Write(page.va(0), 66),
        ]),
    );
    cluster.run();
    assert!(cluster.node(1).stats().faults >= 2, "faults were taken");
    cluster.set_process(2, Script::new(vec![Action::Read(page.va(0))]));
    cluster.run();
    // Node 2's frame now holds the value node 1 wrote.
    let frame2 = cluster.node_mut(2).os_mut().vsm.frame(page.vpage());
    assert_eq!(cluster.read_local_frame(2, frame2, 0), 66);
    // The old owner (home) was invalidated on node 1's write.
    assert!(cluster.node(0).stats().invalidations >= 1);
}

#[test]
fn vsm_writes_after_ownership_are_cheap() {
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(0);
    cluster.make_vsm(&page);
    let mut actions = vec![Action::Write(page.va(0), 1)]; // write fault
    for k in 1..50u64 {
        actions.push(Action::Write(page.va(0), k)); // local after migration
    }
    cluster.set_process(1, Script::new(actions));
    cluster.run();
    let stats = cluster.node(1).stats();
    assert_eq!(stats.faults, 1, "only the first write faults");
    // Subsequent writes are local-shared stores, far cheaper than faults.
    assert!(stats.local_writes.count() >= 49);
}

// ---------------------------------------------------------------------
// OS-trap messaging baseline
// ---------------------------------------------------------------------

#[test]
fn os_messaging_round_trip() {
    let mut cluster = ClusterBuilder::new(2).build();
    cluster.set_process(
        0,
        Script::new(vec![Action::Send {
            dst: tg_wire::NodeId::new(1),
            bytes: 4096,
            tag: 9,
        }]),
    );
    cluster.set_process(1, Script::new(vec![Action::Recv { tag: 9 }]));
    cluster.run();
    let recv = &cluster.node(1).stats().recvs;
    assert_eq!(recv.count(), 1);
    // The OS path costs tens of microseconds (two traps + copies) versus
    // sub-microsecond user-level writes — the paper's motivation.
    assert!(recv.mean() > 25.0, "recv cost only {:.1} us", recv.mean());
}

#[test]
fn messaging_waits_for_late_senders() {
    let mut cluster = ClusterBuilder::new(2).build();
    cluster.set_process(1, Script::new(vec![Action::Recv { tag: 3 }]));
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Compute(SimTime::from_ms(1)),
            Action::Send {
                dst: tg_wire::NodeId::new(1),
                bytes: 64,
                tag: 3,
            },
        ]),
    );
    cluster.run();
    let halted = cluster.node(1).stats().halted_at.expect("receiver done");
    assert!(halted > SimTime::from_ms(1), "receiver finished too early");
}

// ---------------------------------------------------------------------
// Launch-mode parity
// ---------------------------------------------------------------------

#[test]
fn both_prototypes_agree_on_results() {
    let mut finals = Vec::new();
    for hib in [HibConfig::telegraphos_i(), HibConfig::telegraphos_ii()] {
        let mut cluster = ClusterBuilder::new(2).hib_config(hib).build();
        let page = cluster.alloc_shared(1);
        cluster.set_process(
            0,
            Script::new(vec![
                Action::FetchAdd(page.va(0), 7),
                Action::FetchStore(page.va(8), 3),
                Action::CompareSwap(page.va(16), 0, 9),
            ]),
        );
        cluster.run();
        finals.push((
            cluster.read_shared(&page, 0),
            cluster.read_shared(&page, 1),
            cluster.read_shared(&page, 2),
        ));
    }
    assert_eq!(finals[0], (7, 3, 9));
    assert_eq!(finals[0], finals[1], "prototypes disagree");
}

#[test]
fn memory_bus_ablation_is_faster() {
    let run = |timing: TimingConfig| {
        let mut cluster = ClusterBuilder::new(2).timing(timing).build();
        let page = cluster.alloc_shared(1);
        cluster.set_process(
            0,
            Script::new((0..50).map(|i| Action::Read(page.va(i * 8))).collect()),
        );
        cluster.run();
        cluster.node(0).stats().remote_reads.mean()
    };
    let io_bus = run(TimingConfig::telegraphos_i());
    let mem_bus = run(TimingConfig::memory_bus());
    assert!(
        mem_bus < io_bus - 2.0,
        "memory-bus HIB should save bus overhead: {mem_bus:.2} vs {io_bus:.2}"
    );
}

#[test]
fn switchless_direct_cluster_works() {
    let mut cluster = ClusterBuilder::new(2).topology(Topology::direct()).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Write(page.va(0), 3),
            Action::Fence,
            Action::Read(page.va(0)),
        ]),
    );
    cluster.run();
    assert_eq!(cluster.read_shared(&page, 0), 3);
    // Without a switch, the read is cheaper than through the fabric.
    let direct_read = cluster.node(0).stats().remote_reads.mean();
    assert!(direct_read < 7.0, "direct read cost {direct_read:.2} us");
}

#[test]
fn access_counters_profile_hot_pages() {
    // §2.2.6 monitoring mode: arm large counters, run, read them back to
    // find the hot page.
    let mut cluster = ClusterBuilder::new(2).build();
    let hot = cluster.alloc_shared(1);
    let cold = cluster.alloc_shared(1);
    cluster.arm_counters(0, &hot, 10_000, 10_000);
    cluster.arm_counters(0, &cold, 10_000, 10_000);
    let mut actions = Vec::new();
    for i in 0..30u64 {
        actions.push(Action::Read(hot.va(0)));
        if i % 10 == 0 {
            actions.push(Action::Write(cold.va(0), i));
        }
    }
    cluster.set_process(0, Script::new(actions));
    cluster.run();
    let (hot_r, hot_w) = cluster.read_counters(0, &hot).unwrap();
    let (cold_r, cold_w) = cluster.read_counters(0, &cold).unwrap();
    assert_eq!(10_000 - hot_r, 30, "30 hot reads counted");
    assert_eq!(hot_w, 10_000, "no hot writes");
    assert_eq!(cold_r, 10_000, "no cold reads");
    assert_eq!(10_000 - cold_w, 3, "3 cold writes counted");
    // The profile identifies the hot page.
    assert!(10_000 - hot_r > 10_000 - cold_w);
}

#[test]
fn atomics_on_replicated_pages_route_through_the_owner() {
    // Two replica holders fetch&add the same word of a coherent page; the
    // owner must serialize them (lost updates would occur if each executed
    // on its local copy).
    let mut cluster = ClusterBuilder::new(3).build();
    let page = cluster.alloc_shared(0);
    cluster.make_coherent(&page, &[1, 2]);
    let per_node = 20u64;
    for n in [1u16, 2u16] {
        let adds: Vec<Action> = (0..per_node)
            .map(|_| Action::FetchAdd(page.va(0), 1))
            .collect();
        cluster.set_process(n, Script::new(adds));
    }
    cluster.run();
    assert!(cluster.all_halted());
    assert_eq!(
        cluster.read_shared(&page, 0),
        2 * per_node,
        "atomics on replicas lost updates"
    );
    // The reflected results converged onto both replicas.
    for c in [1u16, 2u16] {
        let frame = replica_frame(&mut cluster, &page, c);
        assert_eq!(cluster.read_local_frame(c, frame, 0), 2 * per_node);
    }
}

#[test]
fn report_summarizes_every_node() {
    let mut cluster = ClusterBuilder::new(3).build();
    let page = cluster.alloc_shared(2);
    cluster.set_process(0, Script::new(vec![Action::Write(page.va(0), 1)]));
    cluster.run();
    let report = cluster.report();
    for needle in ["n0", "n1", "n2", "fabric:", "simulated time"] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
}
