//! Multiprogramming tests: several processes per workstation, scheduled
//! cooperatively. OS-level blocks (receives, pager faults) overlap with
//! other processes' computation; hardware-blocking operations freeze the
//! whole CPU — faithful to uncached Alpha loads on the TurboChannel.

use telegraphos::{Action, Backing, ClusterBuilder, Script};
use tg_hib::HibConfig;
use tg_sim::SimTime;
use tg_wire::NodeId;

#[test]
fn two_compute_processes_serialize_on_one_cpu() {
    let mut cluster = ClusterBuilder::new(1).build();
    let work = SimTime::from_us(500);
    cluster.set_process(0, Script::new(vec![Action::Compute(work)]));
    cluster.add_process(0, Script::new(vec![Action::Compute(work)]));
    cluster.run();
    assert!(cluster.all_halted());
    // One CPU: the computes cannot overlap.
    assert!(
        cluster.now() >= SimTime::from_us(1000),
        "computes overlapped on a single CPU: {}",
        cluster.now()
    );
}

#[test]
fn recv_block_overlaps_with_computation() {
    // Process A blocks in Recv for ~1 ms; process B computes 900 us. With
    // switching on the OS block, the node finishes shortly after the
    // message arrives — not after the sum.
    let mut cluster = ClusterBuilder::new(2).build();
    cluster.set_process(
        1,
        Script::new(vec![
            Action::Compute(SimTime::from_ms(1)),
            Action::Send {
                dst: NodeId::new(0),
                bytes: 64,
                tag: 5,
            },
        ]),
    );
    cluster.set_process(0, Script::new(vec![Action::Recv { tag: 5 }]));
    cluster.add_process(0, Script::new(vec![Action::Compute(SimTime::from_us(900))]));
    cluster.run();
    assert!(cluster.all_halted());
    let total = cluster.now();
    assert!(
        total < SimTime::from_us(1_500),
        "no overlap: finished at {total} (expected ~1.1 ms, not ~2 ms)"
    );
    // And the receive really did wait for the late message.
    assert!(total > SimTime::from_ms(1));
}

#[test]
fn hardware_reads_freeze_every_process() {
    // Process A performs 20 remote reads (~7.2 us each, CPU frozen);
    // process B wants 100 us of compute. The CPU freeze means NO overlap:
    // total >= reads + compute.
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(
        0,
        Script::new((0..20).map(|i| Action::Read(page.va(i * 8))).collect()),
    );
    cluster.add_process(0, Script::new(vec![Action::Compute(SimTime::from_us(100))]));
    cluster.run();
    assert!(cluster.all_halted());
    let total_us = cluster.now().as_us_f64();
    assert!(
        total_us >= 20.0 * 6.7 + 100.0 - 1.0,
        "uncached loads must freeze the CPU: {total_us:.0} us"
    );
}

#[test]
fn pager_faults_overlap_with_computation() {
    // Process A thrashes the remote pager (each fault ~300+ us of OS
    // waiting); process B computes. The OS switches during faults.
    let faults = 6u64;
    let compute_total = 1_500.0;

    let run = |with_b: bool| {
        let mut cluster = ClusterBuilder::new(2).build();
        let pages = cluster.make_paged(
            0,
            Backing::RemoteMemory {
                server: NodeId::new(1),
            },
            faults as u32,
            1,
        );
        let acts: Vec<Action> = pages.iter().map(|va| Action::Read(*va)).collect();
        cluster.set_process(0, Script::new(acts));
        if with_b {
            // Chunked compute: every action boundary is a yield point, so
            // the cooperative scheduler can interleave it with the faults.
            cluster.add_process(
                0,
                Script::new(
                    (0..150)
                        .map(|_| Action::Compute(SimTime::from_us(10)))
                        .collect(),
                ),
            );
        }
        cluster.run();
        assert!(cluster.all_halted());
        cluster.now().as_us_f64()
    };
    let alone = run(false);
    let together = run(true);
    let sum = alone + compute_total;
    assert!(
        together < sum * 0.75,
        "expected fault/compute overlap: alone {alone:.0} + compute \
         {compute_total:.0} vs together {together:.0}"
    );
}

#[test]
fn processes_use_separate_contexts_for_atomics() {
    // Two processes on node 0 interleave fetch&adds through their own
    // Telegraphos II contexts; the counter must be exact.
    let mut cluster = ClusterBuilder::new(2)
        .hib_config(HibConfig::telegraphos_ii())
        .build();
    let page = cluster.alloc_shared(1);
    let per_proc = 25u64;
    let adds = |_salt: u64| -> Script {
        Script::new(
            (0..per_proc)
                .flat_map(|_| {
                    [
                        Action::FetchAdd(page.va(0), 1),
                        // A recv-less yield point between atomics.
                        Action::Compute(SimTime::from_us(1)),
                    ]
                })
                .collect(),
        )
    };
    cluster.set_process(0, adds(0));
    cluster.add_process(0, adds(1));
    cluster.run();
    assert!(cluster.all_halted());
    assert_eq!(cluster.read_shared(&page, 0), 2 * per_proc);
}

#[test]
fn many_processes_round_robin_fairly() {
    let mut cluster = ClusterBuilder::new(1).build();
    let k = 4;
    for _ in 0..k {
        cluster.add_process(
            0,
            Script::new(
                (0..10)
                    .map(|_| Action::Compute(SimTime::from_us(10)))
                    .collect(),
            ),
        );
    }
    cluster.run();
    assert!(cluster.all_halted());
    assert_eq!(cluster.node(0).process_count(), k);
    // Total = k * 10 * 10us of serialized compute.
    let total = cluster.now().as_us_f64();
    assert!((395.0..=450.0).contains(&total), "total {total:.1}");
}

#[test]
fn mixed_page_faults_from_two_processes_queue_safely() {
    // Both processes fault on pager pages; the node's single fault slot
    // serializes them without loss.
    let mut cluster = ClusterBuilder::new(2).build();
    let pages = cluster.make_paged(
        0,
        Backing::RemoteMemory {
            server: NodeId::new(1),
        },
        4,
        2,
    );
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Write(pages[0], 11),
            Action::Read(pages[2]),
            Action::Read(pages[0]),
        ]),
    );
    cluster.add_process(
        0,
        Script::new(vec![
            Action::Write(pages[1], 22),
            Action::Read(pages[3]),
            Action::Read(pages[1]),
        ]),
    );
    cluster.run();
    assert!(cluster.all_halted(), "fault queueing deadlocked");
    let stats = cluster.node(0).stats();
    assert!(stats.faults >= 4, "faults: {}", stats.faults);
}
