//! Randomized tests at the full-system level: random workloads over random
//! sharing setups must always drain, converge, and respect write
//! ownership. Cases are drawn from a seeded [`tg_sim::SimRng`] so the
//! sweep is deterministic and dependency-free.

use telegraphos::{Action, ClusterBuilder, Script};
use tg_sim::{RunLimit, SimRng};

/// Disjoint-word writers over plain shared pages: every write lands, the
/// simulation drains, and the result is exactly the last write per word.
#[test]
fn plain_writes_always_land() {
    let mut cases = SimRng::new(0x11AD);
    for _ in 0..16 {
        let nodes = cases.range_between(2, 5) as u16;
        let writes_per_node = cases.range_between(1, 40) as usize;
        let home = (cases.range(5) as u16) % nodes;
        let seed = cases.next_u64();

        let mut cluster = ClusterBuilder::new(nodes).build();
        let page = cluster.alloc_shared(home);
        let mut rng = SimRng::new(seed);
        let mut expected = std::collections::HashMap::new();
        for n in 0..nodes {
            // Each node owns words [n*64, n*64+64).
            let base = u64::from(n) * 64;
            let mut actions = Vec::new();
            for _ in 0..writes_per_node {
                let w = base + rng.range(64);
                let v = rng.next_u64() | 1;
                actions.push(Action::Write(page.va(w * 8), v));
                expected.insert(w, v);
            }
            actions.push(Action::Fence);
            cluster.set_process(n, Script::new(actions));
        }
        assert_eq!(cluster.run_events(5_000_000), RunLimit::Drained);
        assert!(cluster.all_halted());
        for (w, v) in expected {
            assert_eq!(cluster.read_shared(&page, w), v, "word {w}");
        }
    }
}

/// Coherent replication with disjoint-word writers: the owner and every
/// replica converge to the same final image.
#[test]
fn coherent_replicas_always_converge() {
    let mut cases = SimRng::new(0xC0CE);
    for _ in 0..16 {
        let nodes = cases.range_between(3, 5) as u16;
        let writes_per_node = cases.range_between(1, 25) as usize;
        let cam = cases.range_between(1, 20) as usize;
        let seed = cases.next_u64();

        let hib = tg_hib::HibConfig {
            cam_entries: cam,
            ..tg_hib::HibConfig::telegraphos_i()
        };
        let mut cluster = ClusterBuilder::new(nodes).hib_config(hib).build();
        let page = cluster.alloc_shared(0);
        let copies: Vec<u16> = (1..nodes).collect();
        cluster.make_coherent(&page, &copies);
        let mut rng = SimRng::new(seed);
        for n in 0..nodes {
            let base = u64::from(n) * 32;
            let mut actions = Vec::new();
            for _ in 0..writes_per_node {
                let w = base + rng.range(32);
                actions.push(Action::Write(page.va(w * 8), rng.next_u64() | 1));
            }
            actions.push(Action::Fence);
            cluster.set_process(n, Script::new(actions));
        }
        assert_eq!(cluster.run_events(5_000_000), RunLimit::Drained);
        // Every replica frame equals the owner's page image.
        let owner_image: Vec<u64> = (0..1024).map(|w| cluster.read_shared(&page, w)).collect();
        for c in copies {
            let pte = cluster
                .node_mut(c)
                .mmu_mut()
                .table()
                .lookup(page.vpage())
                .expect("replica mapped");
            let frame = match pte.base.decode() {
                tg_mem::Decoded::LocalShared { off } => off.page(),
                other => panic!("replica not local: {other:?}"),
            };
            for (w, &expect) in owner_image.iter().enumerate() {
                assert_eq!(
                    cluster.read_local_frame(c, frame, w as u64),
                    expect,
                    "node {c} word {w}"
                );
            }
        }
    }
}

/// Mixed random reads/writes/atomics/fences over several pages never
/// deadlock or livelock, and the run is deterministic.
#[test]
fn chaotic_mixes_always_drain() {
    let mut cases = SimRng::new(0xC4A0);
    for _ in 0..16 {
        let nodes = cases.range_between(2, 4) as u16;
        let ops = cases.range_between(5, 50) as usize;
        let seed = cases.next_u64();

        let build = || {
            let mut cluster = ClusterBuilder::new(nodes).build();
            let pages: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
            let mut rng = SimRng::new(seed);
            for n in 0..nodes {
                let mut actions = Vec::new();
                for i in 0..ops {
                    let page = pages[rng.range(pages.len() as u64) as usize];
                    let va = page.va(rng.range(128) * 8);
                    actions.push(match rng.range(5) {
                        0 => Action::Read(va),
                        1 => Action::Write(va, i as u64 + 1),
                        2 => Action::FetchAdd(va, 1),
                        3 => Action::Fence,
                        _ => Action::Compute(tg_sim::SimTime::from_us(rng.range(5) + 1)),
                    });
                }
                cluster.set_process(n, Script::new(actions));
            }
            let outcome = cluster.run_events(5_000_000);
            (outcome, cluster.now(), cluster.fabric_bytes())
        };
        let a = build();
        assert_eq!(a.0, RunLimit::Drained, "livelock/deadlock");
        let b = build();
        assert_eq!(a, b, "nondeterministic run");
    }
}
