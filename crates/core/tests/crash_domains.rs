//! Crash-stop fault domains at the full-cluster level: heartbeat
//! conviction of a silenced node, structured failure of in-flight remote
//! operations, bit-for-bit crash replay, route-around recovery past a dead
//! switch, named partitions when the cut disconnects the fabric, and
//! restart reconciliation.

use telegraphos::{Action, ClusterBuilder, FaultPlan, OpError, RelParams, Script, Topology};
use tg_sim::{RunLimit, SimTime};
use tg_wire::NodeId;

/// A write/read loop against a page homed on `page_home`, padded with
/// compute so it straddles a mid-run crash window.
fn pounding_script(page: &telegraphos::SharedPage, rounds: u64) -> Script {
    let mut acts = Vec::new();
    for i in 0..rounds {
        acts.push(Action::Write(page.va((i % 16) * 8), i + 1));
        acts.push(Action::Compute(SimTime::from_us(20)));
        acts.push(Action::Read(page.va((i % 16) * 8)));
    }
    Script::new(acts)
}

/// In-flight and future remote operations against a crashed peer resolve
/// as structured `OpError::PeerUnreachable` — the survivor's script runs
/// to completion, nothing hangs, nothing panics, and the relaxed
/// conservation audit still closes its books.
#[test]
fn ops_to_a_crashed_peer_fail_structurally() {
    let plan = FaultPlan::new(0xC0FFEE).node_crash(NodeId::new(1), SimTime::from_us(100));
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats();
    let page = cluster.alloc_shared(1);
    cluster.set_process(0, pounding_script(&page, 40));
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(80));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "the survivor never finished: ops to the dead peer hung"
    );
    let st = cluster.node(0).stats();
    assert!(st.peer_downs > 0, "node 0 never convicted the dead peer");
    assert!(st.op_failures > 0, "no op ever failed structurally");
    let errs = cluster.node(0).hib().op_errors();
    assert!(
        errs.iter()
            .any(|e| matches!(e, OpError::PeerUnreachable { peer } if *peer == NodeId::new(1))),
        "no PeerUnreachable{{peer: node1}} was recorded: {errs:?}"
    );
    let cons = cluster.conservation_violations();
    assert!(cons.is_empty(), "crash run broke conservation: {cons:?}");
}

/// The same seeded crash plan replays bit for bit: identical final
/// memory, identical operation/failure counters, identical fabric
/// traffic, identical finish time.
#[test]
fn seeded_crash_runs_replay_bit_for_bit() {
    let run = || {
        let plan = FaultPlan::new(0x5EED_DEAD)
            .drop(0.05)
            .node_crash(NodeId::new(1), SimTime::from_us(120));
        let mut cluster = ClusterBuilder::new(3)
            .reliable_links(RelParams::default())
            .with_faults(plan)
            .build();
        cluster.enable_heartbeats();
        let page = cluster.alloc_shared(1);
        let page0 = cluster.alloc_shared(0);
        cluster.set_process(0, pounding_script(&page, 30));
        cluster.set_process(2, pounding_script(&page0, 30));
        cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(80));
        let mem: Vec<u64> = (0..16).map(|w| cluster.read_shared(&page0, w)).collect();
        let stats: Vec<String> = (0..3)
            .map(|i| format!("{:?}", cluster.node(i).stats()))
            .collect();
        (
            mem,
            stats,
            cluster.fabric_packets(),
            cluster.fabric_retransmits(),
            cluster.now(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "seeded crash replay diverged");
}

/// A crashed peer must not be blamed by the no-progress diagnosis: the
/// survivor's run ends cleanly even though the dead node never halts,
/// because declared-dead sites are filtered out of the deadlock report.
#[test]
fn crashed_peers_are_not_reported_as_deadlocks() {
    let plan = FaultPlan::new(0xDEAD0).node_crash(NodeId::new(1), SimTime::from_us(80));
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats();
    let page0 = cluster.alloc_shared(0);
    // The doomed node pounds a page homed on the survivor; after the
    // crash its traffic is silenced and it never halts.
    cluster.set_process(1, pounding_script(&page0, 200));
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page0.va(0), 7), Action::Fence]),
    );
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(60));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "survivor wedged behind the dead peer"
    );
    assert!(
        cluster.node(0).halted(),
        "the survivor's own work did not finish"
    );
}

/// On a switch ring, traffic routes around a dead switch: the fabric
/// recomputes paths from the shared view and the workload completes with
/// correct memory contents.
#[test]
fn traffic_routes_around_a_dead_switch() {
    // Ring of 4 switches, one node each. Switch 1 dies early and stays
    // dead; node 0's traffic to node 2 must fail over to the 0-3-2 arc.
    let plan = FaultPlan::new(0x0FF).switch_outage(1, SimTime::from_us(40), SimTime::from_ms(500));
    let params = RelParams {
        max_retries: 6,
        ..RelParams::default()
    };
    let mut cluster = ClusterBuilder::new(4)
        .topology(Topology::ring(4))
        .reliable_links(params)
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats();
    let page = cluster.alloc_shared(2);
    let mut acts = Vec::new();
    for i in 0..24u64 {
        acts.push(Action::Write(page.va((i % 16) * 8), 1000 + i));
        acts.push(Action::Compute(SimTime::from_us(25)));
    }
    acts.push(Action::Fence);
    cluster.set_process(0, Script::new(acts));
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(100));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "traffic never routed around the dead switch"
    );
    assert!(cluster.node(0).halted(), "writer never finished");
    // Writes from both before and after the outage landed.
    assert_eq!(cluster.read_shared(&page, 0), 1000 + 16);
    assert_eq!(cluster.read_shared(&page, 15), 1000 + 15);
}

/// When the cut disconnects the fabric (a chain loses its middle
/// switch), recovery is impossible — the run degrades into a structured
/// deadlock report that names the partition instead of hanging.
#[test]
fn a_disconnecting_cut_names_the_partition() {
    let plan = FaultPlan::new(0xC07).switch_outage(1, SimTime::ZERO, SimTime::from_ms(500));
    let params = RelParams {
        max_retries: 4,
        ..RelParams::default()
    };
    let mut cluster = ClusterBuilder::new(3)
        .topology(Topology::chain(3))
        .reliable_links(params)
        .with_faults(plan)
        .build();
    let page = cluster.alloc_shared(2);
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page.va(0), 9), Action::Fence]),
    );
    let report = cluster
        .run_watchdog(SimTime::from_us(500))
        .expect_err("a disconnected fabric must trip the watchdog");
    assert!(
        !report.partition.is_empty(),
        "the report does not name the partition: {report}"
    );
    let shown = format!("{report}");
    assert!(
        shown.contains("PARTITION"),
        "partition missing from the rendered report: {shown}"
    );
}

/// A crashed node that restarts is convicted, then rehabilitated: the
/// survivor sees both transitions and finishes its workload, and the
/// revived peer's stale copies were discarded on rejoin.
#[test]
fn a_restarted_peer_is_convicted_then_rehabilitated() {
    let plan = FaultPlan::new(0x12E5)
        .node_crash(NodeId::new(1), SimTime::from_us(100))
        .node_restart(NodeId::new(1), SimTime::from_ms(4));
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats();
    let page = cluster.alloc_shared(0);
    // Long-running survivor workload spanning crash and restart.
    cluster.set_process(0, pounding_script(&page, 400));
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(120));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "survivor wedged across the restart"
    );
    let st = cluster.node(0).stats();
    assert!(st.peer_downs > 0, "the crash was never detected");
    assert!(
        st.peer_ups > 0,
        "the restart was never detected (peer_downs={}, now={:?})",
        st.peer_downs,
        cluster.now()
    );
}
