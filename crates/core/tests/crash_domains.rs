//! Crash-stop fault domains at the full-cluster level: heartbeat
//! conviction of a silenced node, structured failure of in-flight remote
//! operations, bit-for-bit crash replay, route-around recovery past a dead
//! switch, named partitions when the cut disconnects the fabric, and
//! restart reconciliation.

use telegraphos::{
    Action, ClusterBuilder, DetectParams, FaultPlan, OpError, RelParams, Script, Topology,
};
use tg_sim::{RunLimit, SimTime};
use tg_wire::NodeId;

/// A write/read loop against a page homed on `page_home`, padded with
/// compute so it straddles a mid-run crash window.
fn pounding_script(page: &telegraphos::SharedPage, rounds: u64) -> Script {
    let mut acts = Vec::new();
    for i in 0..rounds {
        acts.push(Action::Write(page.va((i % 16) * 8), i + 1));
        acts.push(Action::Compute(SimTime::from_us(20)));
        acts.push(Action::Read(page.va((i % 16) * 8)));
    }
    Script::new(acts)
}

/// In-flight and future remote operations against a crashed peer resolve
/// as structured `OpError::PeerUnreachable` — the survivor's script runs
/// to completion, nothing hangs, nothing panics, and the relaxed
/// conservation audit still closes its books.
#[test]
fn ops_to_a_crashed_peer_fail_structurally() {
    let plan = FaultPlan::new(0xC0FFEE).node_crash(NodeId::new(1), SimTime::from_us(100));
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats(DetectParams::default());
    let page = cluster.alloc_shared(1);
    cluster.set_process(0, pounding_script(&page, 40));
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(80));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "the survivor never finished: ops to the dead peer hung"
    );
    let st = cluster.node(0).stats();
    assert!(st.peer_downs > 0, "node 0 never convicted the dead peer");
    assert!(st.op_failures > 0, "no op ever failed structurally");
    let errs = cluster.node(0).hib().op_errors();
    assert!(
        errs.iter()
            .any(|e| matches!(e, OpError::PeerUnreachable { peer } if *peer == NodeId::new(1))),
        "no PeerUnreachable{{peer: node1}} was recorded: {errs:?}"
    );
    let cons = cluster.conservation_violations();
    assert!(cons.is_empty(), "crash run broke conservation: {cons:?}");
}

/// The same seeded crash plan replays bit for bit: identical final
/// memory, identical operation/failure counters, identical fabric
/// traffic, identical finish time.
#[test]
fn seeded_crash_runs_replay_bit_for_bit() {
    let run = || {
        let plan = FaultPlan::new(0x5EED_DEAD)
            .drop(0.05)
            .node_crash(NodeId::new(1), SimTime::from_us(120));
        let mut cluster = ClusterBuilder::new(3)
            .reliable_links(RelParams::default())
            .with_faults(plan)
            .build();
        cluster.enable_heartbeats(DetectParams::default());
        let page = cluster.alloc_shared(1);
        let page0 = cluster.alloc_shared(0);
        cluster.set_process(0, pounding_script(&page, 30));
        cluster.set_process(2, pounding_script(&page0, 30));
        cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(80));
        let mem: Vec<u64> = (0..16).map(|w| cluster.read_shared(&page0, w)).collect();
        let stats: Vec<String> = (0..3)
            .map(|i| format!("{:?}", cluster.node(i).stats()))
            .collect();
        (
            mem,
            stats,
            cluster.fabric_packets(),
            cluster.fabric_retransmits(),
            cluster.now(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "seeded crash replay diverged");
}

/// A crashed peer must not be blamed by the no-progress diagnosis: the
/// survivor's run ends cleanly even though the dead node never halts,
/// because declared-dead sites are filtered out of the deadlock report.
#[test]
fn crashed_peers_are_not_reported_as_deadlocks() {
    let plan = FaultPlan::new(0xDEAD0).node_crash(NodeId::new(1), SimTime::from_us(80));
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats(DetectParams::default());
    let page0 = cluster.alloc_shared(0);
    // The doomed node pounds a page homed on the survivor; after the
    // crash its traffic is silenced and it never halts.
    cluster.set_process(1, pounding_script(&page0, 200));
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page0.va(0), 7), Action::Fence]),
    );
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(60));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "survivor wedged behind the dead peer"
    );
    assert!(
        cluster.node(0).halted(),
        "the survivor's own work did not finish"
    );
}

/// On a switch ring, traffic routes around a dead switch: the fabric
/// recomputes paths from the shared view and the workload completes with
/// correct memory contents.
#[test]
fn traffic_routes_around_a_dead_switch() {
    // Ring of 4 switches, one node each. Switch 1 dies early and stays
    // dead; node 0's traffic to node 2 must fail over to the 0-3-2 arc.
    let plan = FaultPlan::new(0x0FF).switch_outage(1, SimTime::from_us(40), SimTime::from_ms(500));
    let params = RelParams {
        max_retries: 6,
        ..RelParams::default()
    };
    let mut cluster = ClusterBuilder::new(4)
        .topology(Topology::ring(4))
        .reliable_links(params)
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats(DetectParams::default());
    let page = cluster.alloc_shared(2);
    let mut acts = Vec::new();
    for i in 0..24u64 {
        acts.push(Action::Write(page.va((i % 16) * 8), 1000 + i));
        acts.push(Action::Compute(SimTime::from_us(25)));
    }
    acts.push(Action::Fence);
    cluster.set_process(0, Script::new(acts));
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(100));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "traffic never routed around the dead switch"
    );
    assert!(cluster.node(0).halted(), "writer never finished");
    // Writes from both before and after the outage landed.
    assert_eq!(cluster.read_shared(&page, 0), 1000 + 16);
    assert_eq!(cluster.read_shared(&page, 15), 1000 + 15);
}

/// When the cut disconnects the fabric (a chain loses its middle
/// switch), recovery is impossible — the run degrades into a structured
/// deadlock report that names the partition instead of hanging.
#[test]
fn a_disconnecting_cut_names_the_partition() {
    let plan = FaultPlan::new(0xC07).switch_outage(1, SimTime::ZERO, SimTime::from_ms(500));
    let params = RelParams {
        max_retries: 4,
        ..RelParams::default()
    };
    let mut cluster = ClusterBuilder::new(3)
        .topology(Topology::chain(3))
        .reliable_links(params)
        .with_faults(plan)
        .build();
    let page = cluster.alloc_shared(2);
    cluster.set_process(
        0,
        Script::new(vec![Action::Write(page.va(0), 9), Action::Fence]),
    );
    let report = cluster
        .run_watchdog(SimTime::from_us(500))
        .expect_err("a disconnected fabric must trip the watchdog");
    assert!(
        !report.partition.is_empty(),
        "the report does not name the partition: {report}"
    );
    let shown = format!("{report}");
    assert!(
        shown.contains("PARTITION"),
        "partition missing from the rendered report: {shown}"
    );
}

/// An OS-trap send issued *after* the destination's conviction fails fast
/// at issue time (`OpError::PeerUnreachable`, refused-send counted)
/// instead of streaming DMA bursts into a dead link's retry budget.
#[test]
fn sends_issued_after_conviction_fail_at_issue_time() {
    let plan = FaultPlan::new(0xFA57).node_crash(NodeId::new(1), SimTime::from_us(100));
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats(DetectParams::default());
    // Wait out the crash + conviction locally, then try to message the
    // corpse: nothing here touches node 1 before its conviction.
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Compute(SimTime::from_ms(1)),
            Action::Send {
                dst: NodeId::new(1),
                bytes: 4096,
                tag: 7,
            },
            Action::Halt,
        ]),
    );
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(10));
    assert_ne!(outcome, RunLimit::Deadline, "sender never finished");
    let hib = cluster.node(0).hib().stats();
    assert!(
        hib.os_sends_refused > 0,
        "the post-conviction send was not refused at issue time"
    );
    assert!(
        cluster.node(0).stats().op_failures > 0,
        "the refused send never surfaced as a structured op failure"
    );
}

/// `DetectParams` is a real knob, not decoration: the same crash is
/// convicted under the default thresholds but goes unnoticed when the
/// caller stretches `peer_timeout` past the whole run.
#[test]
fn detect_params_tune_the_conviction_threshold() {
    let run = |params: DetectParams| {
        let plan = FaultPlan::new(0xD7EC).node_crash(NodeId::new(1), SimTime::from_us(100));
        let mut cluster = ClusterBuilder::new(2)
            .reliable_links(RelParams::default())
            .with_faults(plan)
            .build();
        cluster.enable_heartbeats(params);
        // Pure local compute: the survivor never touches the dead peer,
        // so the only down verdict can come from the detector.
        cluster.set_process(
            0,
            Script::new(vec![Action::Compute(SimTime::from_ms(1)), Action::Halt]),
        );
        cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(10));
        cluster.node(0).stats().peer_downs
    };
    assert!(
        run(DetectParams::default()) > 0,
        "default thresholds missed a 100us crash over a 1ms run"
    );
    let deaf = DetectParams {
        peer_timeout: SimTime::from_ms(50),
        ..DetectParams::default()
    };
    assert_eq!(
        run(deaf),
        0,
        "a 50ms peer_timeout convicted within a 1ms run"
    );
}

/// Invalid detector knobs are rejected at `enable_heartbeats` instead of
/// silently convicting healthy peers between their own beacons.
#[test]
#[should_panic(expected = "inverted")]
fn inverted_detect_params_are_rejected_at_enable() {
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .build();
    cluster.enable_heartbeats(DetectParams {
        heartbeat_every: SimTime::from_us(100),
        peer_timeout: SimTime::from_us(50),
        phi_factor: 8,
    });
}

/// A crashed node that restarts is convicted, then rehabilitated: the
/// survivor sees both transitions and finishes its workload, and the
/// revived peer's stale copies were discarded on rejoin.
#[test]
fn a_restarted_peer_is_convicted_then_rehabilitated() {
    let plan = FaultPlan::new(0x12E5)
        .node_crash(NodeId::new(1), SimTime::from_us(100))
        .node_restart(NodeId::new(1), SimTime::from_ms(4));
    let mut cluster = ClusterBuilder::new(2)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats(DetectParams::default());
    let page = cluster.alloc_shared(0);
    // Long-running survivor workload spanning crash and restart.
    cluster.set_process(0, pounding_script(&page, 400));
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(120));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "survivor wedged across the restart"
    );
    let st = cluster.node(0).stats();
    assert!(st.peer_downs > 0, "the crash was never detected");
    assert!(
        st.peer_ups > 0,
        "the restart was never detected (peer_downs={}, now={:?})",
        st.peer_downs,
        cluster.now()
    );
}

/// A failover-aware writer that re-targets on structural failure using
/// the service-layer successor rule ([`tg_proto::RangeMap::promote`]:
/// smallest-id live replica). Each round fetch-stores the round number
/// into the current owner's page; a `Resume::Failed` convicts the
/// target locally and promotes the next live replica, retrying the same
/// round — so a crash of the *promoted* owner mid-migration cascades to
/// the next survivor.
struct CascadingWriter {
    map: tg_proto::RangeMap,
    pages: Vec<telegraphos::SharedPage>,
    live: Vec<bool>,
    target: usize,
    round: u64,
    rounds: u64,
    reroutes: u32,
    /// True while waiting out the per-round compute padding (which makes
    /// the migration span both crash windows).
    padding: bool,
}

impl CascadingWriter {
    fn new(pages: Vec<telegraphos::SharedPage>, rounds: u64) -> Self {
        let replicas: Vec<NodeId> = pages.iter().map(|p| p.home).collect();
        CascadingWriter {
            map: tg_proto::RangeMap::new(1, &replicas),
            pages,
            live: vec![true; 3],
            target: 0,
            round: 0,
            rounds,
            reroutes: 0,
            padding: false,
        }
    }

    fn store(&self) -> Action {
        Action::FetchStore(self.pages[self.target].va(0), self.round + 1)
    }
}

impl telegraphos::Process for CascadingWriter {
    fn resume(&mut self, r: telegraphos::Resume) -> Action {
        match r {
            telegraphos::Resume::Start => self.store(),
            telegraphos::Resume::Failed(OpError::PeerUnreachable { peer }) => {
                // Convict and promote: the same smallest-id-live rule the
                // KV service's clients use.
                if let Some(i) = self.pages.iter().position(|p| p.home == peer) {
                    self.live[i] = false;
                }
                self.live[self.target] = false;
                self.reroutes += 1;
                let live = self.live.clone();
                let next = self.map.promote(|n| {
                    self.pages
                        .iter()
                        .position(|p| p.home == n)
                        .is_some_and(|i| live[i])
                });
                match next {
                    Some(n) => {
                        self.target = self
                            .pages
                            .iter()
                            .position(|p| p.home == n)
                            .expect("promoted a non-replica");
                        self.store()
                    }
                    None => Action::Halt,
                }
            }
            _ => {
                if self.padding {
                    self.padding = false;
                    return self.store();
                }
                self.round += 1;
                if self.round >= self.rounds {
                    return Action::Halt;
                }
                self.padding = true;
                Action::Compute(SimTime::from_us(20))
            }
        }
    }
}

/// Cascading failover: the owner crashes, writes migrate to the promoted
/// successor, then the *successor* crashes mid-migration and ownership
/// must settle on the third replica — with every round's write landing
/// exactly once on whichever replica finally owned it, nothing hung, and
/// both convictions visible at the writer.
#[test]
fn cascading_failover_settles_on_the_third_replica() {
    let plan = FaultPlan::new(0xCA5CADE)
        .node_crash(NodeId::new(1), SimTime::from_us(150))
        .node_crash(NodeId::new(2), SimTime::from_us(700));
    let mut cluster = ClusterBuilder::new(4)
        .reliable_links(RelParams::default())
        .with_faults(plan)
        .build();
    cluster.enable_heartbeats(DetectParams::default());
    let pages: Vec<_> = (1..4).map(|n| cluster.alloc_shared(n)).collect();
    let rounds = 40u64;
    cluster.set_process(0, CascadingWriter::new(pages.clone(), rounds));
    let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(120));
    assert_ne!(
        outcome,
        RunLimit::Deadline,
        "writer wedged across the cascade"
    );
    assert!(cluster.node(0).halted(), "writer never finished its rounds");
    let st = cluster.node(0).stats();
    assert!(
        st.peer_downs >= 2,
        "both crashes must be convicted (peer_downs={})",
        st.peer_downs
    );
    assert!(
        st.op_failures >= 2,
        "each crash should fail at least one in-flight op (op_failures={})",
        st.op_failures
    );
    // Ownership settled on the third replica: the final rounds landed on
    // node 3's page and reached the last round number.
    assert_eq!(
        cluster.read_shared(&pages[2], 0),
        rounds,
        "the last write did not land on the final owner"
    );
    let cons = cluster.conservation_violations();
    assert!(cons.is_empty(), "cascade broke conservation: {cons:?}");
}
