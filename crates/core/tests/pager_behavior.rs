//! Remote-memory paging (E11 substrate) behaviour: data survives
//! eviction round trips, LRU works, and remote memory beats disk.

use telegraphos::{Action, Backing, ClusterBuilder, Script};
use tg_wire::NodeId;

#[test]
fn disk_paging_faults_and_preserves_data() {
    let mut cluster = ClusterBuilder::new(1).build();
    let pages = cluster.make_paged(0, Backing::Disk, 4, 2);
    let mut actions = Vec::new();
    // Write a distinct value to each page (faults them in, evicting).
    for (i, va) in pages.iter().enumerate() {
        actions.push(Action::Write(*va, 100 + i as u64));
    }
    // Read them all back (more faults; disk pages are not written back in
    // the model, but the resident copies persist in their frames).
    for va in &pages {
        actions.push(Action::Read(*va));
    }
    cluster.set_process(0, Script::new(actions));
    cluster.run();
    let stats = cluster.node(0).stats();
    assert!(
        stats.faults >= 6,
        "expected thrashing, got {}",
        stats.faults
    );
    let pager_stats = cluster.node_mut(0).os_mut().pager.as_ref().unwrap().stats();
    assert!(pager_stats.evictions >= 4);
    // Disk latency dominates: every fault costs ~15 ms.
    assert!(cluster.now() >= tg_sim::SimTime::from_ms(15 * 6));
}

#[test]
fn remote_paging_round_trips_data_through_the_server() {
    let mut cluster = ClusterBuilder::new(2).build();
    let pages = cluster.make_paged(
        0,
        Backing::RemoteMemory {
            server: NodeId::new(1),
        },
        3,
        1, // single resident page: every switch evicts
    );
    let mut actions = Vec::new();
    // Write distinct values into all three pages (each write evicts the
    // previous page to the server).
    for (i, va) in pages.iter().enumerate() {
        actions.push(Action::Write(*va, 1000 + i as u64));
    }
    // Read them back in reverse order — each read faults the page back in
    // from the server, where the evicted data must have survived.
    for va in pages.iter().rev() {
        actions.push(Action::Read(*va));
    }
    cluster.set_process(0, Script::new(actions));
    cluster.run();
    // Verify through the pager frames: each page's value survived.
    for (i, va) in pages.iter().enumerate() {
        let vpage = va.vpage();
        let node = cluster.node_mut(0);
        let pager = node.os_mut().pager.as_ref().unwrap();
        if pager.is_resident(vpage) {
            let frame = pager.local_frame(vpage);
            assert_eq!(
                cluster.read_local_frame(0, frame, 0),
                1000 + i as u64,
                "page {i} lost its data"
            );
        }
    }
    let stats = cluster.node(0).stats();
    assert!(stats.faults >= 5, "single-slot pager must thrash");
}

#[test]
fn lru_keeps_the_hot_page_resident() {
    let mut cluster = ClusterBuilder::new(2).build();
    let pages = cluster.make_paged(
        0,
        Backing::RemoteMemory {
            server: NodeId::new(1),
        },
        3,
        2,
    );
    let mut actions = Vec::new();
    // Fault in pages 0 and 1; then alternate touching page 0 with faults
    // on pages 1/2 — page 0 must stay resident throughout.
    actions.push(Action::Write(pages[0], 7));
    actions.push(Action::Write(pages[1], 8));
    for k in 0..4u64 {
        actions.push(Action::Read(pages[0])); // keep page 0 hot
        actions.push(Action::Write(pages[(1 + (k % 2)) as usize], 9 + k));
    }
    cluster.set_process(0, Script::new(actions));
    cluster.run();
    let node = cluster.node_mut(0);
    let pager = node.os_mut().pager.as_ref().unwrap();
    assert!(
        pager.is_resident(pages[0].vpage()),
        "the hot page was evicted despite LRU"
    );
}

#[test]
fn remote_memory_is_far_faster_than_disk() {
    let run = |backing: Backing| {
        let nodes = if matches!(backing, Backing::Disk) {
            1
        } else {
            2
        };
        let mut cluster = ClusterBuilder::new(nodes).build();
        let pages = cluster.make_paged(0, backing, 6, 2);
        let mut actions = Vec::new();
        // A thrashing sweep: 3 passes over 6 pages with 2 slots.
        for _ in 0..3 {
            for va in &pages {
                actions.push(Action::Read(*va));
            }
        }
        cluster.set_process(0, Script::new(actions));
        cluster.run();
        cluster.now().as_us_f64()
    };
    let disk = run(Backing::Disk);
    let remote = run(Backing::RemoteMemory {
        server: NodeId::new(1),
    });
    assert!(
        disk / remote > 20.0,
        "remote paging should be >20x faster than disk for a thrashing \
         workload (ref [21]); got {:.1}x ({disk:.0} vs {remote:.0} us)",
        disk / remote
    );
}
