//! Integration tests for `tg-analyze`: the telescoping invariant of
//! critical-path attribution under link faults, and determinism of the
//! stencil_16 congestion report that the CI perf gate diffs.

use telegraphos_suite::harness::{self, HarnessOptions};
use tg_analyze::{
    attribute_ops, class_breakdown, hottest_links, latency_histogram, link_usage, SegClass,
};
use tg_sim::{MetricsRegistry, SimTime};

/// Every traced operation's attributed segments must sum *exactly* to its
/// end-to-end latency — even when the reliable link layer is retransmitting
/// through injected drops and corruption, which stretches chains across
/// recovery events.
#[test]
fn segments_telescope_under_faults() {
    let mut saw_retransmit = false;
    for seed in [0xFA_0001u64, 0xFA_1001, 0xFA_2001] {
        let opts = HarnessOptions {
            nodes: 4,
            reliable: true,
            drop: 0.15,
            corrupt: 0.05,
            fault_seed: seed,
            ..HarnessOptions::default()
        };
        let mut cluster = harness::build_pingpong(&opts);
        let collector = cluster.enable_tracing();
        cluster.run();
        assert!(cluster.all_halted(), "seed {seed:#x}: cluster wedged");

        let ops = collector.op_events();
        let packets = collector.packet_events();
        let attribs = attribute_ops(&ops, &packets);
        assert!(!attribs.is_empty(), "seed {seed:#x}: no traced operations");
        for a in &attribs {
            assert_eq!(
                a.total(),
                a.latency(),
                "seed {seed:#x}: segments do not telescope for {:?} on node{} \
                 (sum {} vs latency {})",
                a.op.kind,
                a.op.node.raw(),
                a.total(),
                a.latency()
            );
            saw_retransmit |= a.segments.iter().any(|s| s.class == SegClass::Retransmit);
        }
    }
    assert!(
        saw_retransmit,
        "15% drop + 5% corrupt over three seeds never attributed a retransmit segment"
    );
}

/// One traced + sampled stencil run, reduced to the pieces the report
/// compares: the hottest-link table, the latency percentiles, and the
/// per-class attribution totals.
fn stencil_snapshot() -> (String, Vec<u64>, Vec<(SegClass, SimTime)>) {
    let opts = HarnessOptions {
        nodes: 16,
        ..HarnessOptions::default()
    };
    let (mut cluster, check) = harness::build_stencil(&opts, 4, 4);
    let collector = cluster.enable_tracing();
    let mut metrics = MetricsRegistry::new();
    cluster.run_sampled(SimTime::from_us(1), &mut metrics);
    harness::verify_stencil(&cluster, &check).expect("stencil result");

    let attribs = attribute_ops(&collector.op_events(), &collector.packet_events());
    for a in &attribs {
        assert_eq!(a.total(), a.latency(), "stencil segments do not telescope");
    }
    let hist = latency_histogram(&attribs);
    let quantiles = [0.5, 0.99, 0.999]
        .iter()
        .map(|&q| hist.quantile(q))
        .collect();
    let hottest = hottest_links(&link_usage(&metrics), 5);
    let table = hottest
        .iter()
        .map(|l| format!("{} {:?}", l.name, l))
        .collect::<Vec<_>>()
        .join("\n");
    (table, quantiles, class_breakdown(&attribs))
}

/// The congestion observatory must be byte-for-byte deterministic: two
/// identical stencil_16 runs produce the same hottest-link ranking, the
/// same latency percentiles, and the same attribution totals — that is
/// what lets CI gate `report.json` at zero tolerance.
#[test]
fn stencil16_hottest_link_report_is_deterministic() {
    let (table_a, quantiles_a, classes_a) = stencil_snapshot();
    let (table_b, quantiles_b, classes_b) = stencil_snapshot();
    assert_eq!(table_a, table_b, "hottest-link report differs between runs");
    assert_eq!(quantiles_a, quantiles_b, "latency percentiles differ");
    assert_eq!(classes_a, classes_b, "attribution totals differ");

    let top = table_a.lines().next().expect("at least one hot link");
    assert!(
        top.starts_with("switch0-node0 "),
        "saturated link moved: expected the switch->node0 hop \
         (barrier and coordination pages are homed on node 0), got {top}"
    );
}
