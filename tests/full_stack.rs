//! Workspace-level integration tests: scenarios that span every crate —
//! larger topologies, mixed mechanisms, determinism, and workload-driven
//! end-to-end checks.

use telegraphos::{Action, ClusterBuilder, ReplicatePolicy, Script};
use tg_hib::HibConfig;
use tg_net::Topology;
use tg_sim::SimTime;
use tg_wire::TimingConfig;
use tg_workloads::{stream_reads, stream_writes, uniform_mixed, Consumer, PcConfig, Producer};

#[test]
fn nine_node_mesh_all_pairs_traffic() {
    let mut cluster = ClusterBuilder::new(9)
        .topology(Topology::mesh(3, 3))
        .build();
    // Each node owns one page; every other node writes its rank into a
    // distinct word of every page.
    let pages: Vec<_> = (0..9).map(|n| cluster.alloc_shared(n)).collect();
    for writer in 0..9u16 {
        let mut actions = Vec::new();
        for (pi, page) in pages.iter().enumerate() {
            if pi as u16 != writer {
                actions.push(Action::Write(
                    page.va(u64::from(writer) * 8),
                    u64::from(writer) + 100,
                ));
            }
        }
        actions.push(Action::Fence);
        cluster.set_process(writer, Script::new(actions));
    }
    cluster.run();
    assert!(cluster.all_halted());
    for (pi, page) in pages.iter().enumerate() {
        for writer in 0..9u64 {
            if pi as u64 != writer {
                assert_eq!(
                    cluster.read_shared(page, writer),
                    writer + 100,
                    "page {pi} word {writer}"
                );
            }
        }
    }
}

#[test]
fn chain_of_stars_topology_works() {
    let mut cluster = ClusterBuilder::new(6)
        .topology(Topology::chain_of_stars(3, 2))
        .build();
    let page = cluster.alloc_shared(5);
    cluster.set_process(0, stream_writes(&page, 64));
    cluster.run();
    assert_eq!(cluster.read_shared(&page, 63), 64);
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let mut cluster = ClusterBuilder::new(4).build();
        let pages: Vec<_> = (0..4).map(|n| cluster.alloc_shared(n)).collect();
        for n in 0..4u16 {
            cluster.set_process(n, uniform_mixed(&pages, 200, 0.5, u64::from(n) + 1));
        }
        cluster.run();
        let t = cluster.now();
        let bytes = cluster.fabric_bytes();
        let sums: Vec<u64> = (0..4)
            .map(|n| {
                (0..64)
                    .map(|w| cluster.read_shared(&pages[n as usize], w))
                    .sum::<u64>()
            })
            .collect();
        (t, bytes, sums)
    };
    assert_eq!(run(), run(), "simulation must be bit-deterministic");
}

#[test]
fn coherent_and_vsm_pages_coexist() {
    let mut cluster = ClusterBuilder::new(3).build();
    let coherent = cluster.alloc_shared(0);
    cluster.make_coherent(&coherent, &[1, 2]);
    let vsm = cluster.alloc_shared(0);
    cluster.make_vsm(&vsm);
    cluster.set_process(
        1,
        Script::new(vec![
            Action::Write(coherent.va(0), 11),
            Action::Write(vsm.va(0), 22),
            Action::Fence,
        ]),
    );
    cluster.run();
    assert_eq!(cluster.read_shared(&coherent, 0), 11);
    // The VSM write migrated the page to node 1's frame.
    let frame = cluster.node_mut(1).os_mut().vsm.frame(vsm.vpage());
    assert_eq!(cluster.read_local_frame(1, frame, 0), 22);
    assert!(cluster.node(1).stats().faults >= 1);
}

#[test]
fn replication_and_streaming_mix() {
    let mut cluster = ClusterBuilder::new(3)
        .replicate_policy(ReplicatePolicy::OnAlarm)
        .build();
    let hot = cluster.alloc_shared(2);
    let cold = cluster.alloc_shared(2);
    cluster.arm_counters(0, &hot, 4, u16::MAX);
    let mut actions = Vec::new();
    for i in 0..30u64 {
        actions.push(Action::Read(hot.va(0)));
        actions.push(Action::Compute(SimTime::from_us(40)));
        actions.push(Action::Write(cold.va((i % 1024) * 8), i));
    }
    cluster.set_process(0, Script::new(actions));
    cluster.run();
    let s = cluster.node(0).stats();
    assert!(s.replications >= 1, "hot page should replicate");
    // Cold-page writes kept flowing remotely the whole time.
    assert_eq!(s.remote_writes.count(), 30);
    assert_eq!(cluster.read_shared(&cold, 29), 29);
}

#[test]
fn producer_consumer_checksum_over_eager_pages() {
    let mut cluster = ClusterBuilder::new(2).build();
    let data = cluster.alloc_shared(0);
    cluster.make_coherent(&data, &[1]);
    let flag = cluster.alloc_shared(1);
    let ack = cluster.alloc_shared(0);
    let cfg = PcConfig {
        data,
        flag,
        ack,
        words: 16,
        rounds: 4,
        poll: SimTime::from_us(2),
        fence: true,
    };
    cluster.set_process(0, Producer::new(cfg));
    cluster.set_process(1, Consumer::new(cfg));
    cluster.run();
    assert!(cluster.all_halted(), "handshake deadlocked");
    // Expected checksum: sum over rounds/words of (round+1)*10_000 + w.
    let expect: u64 = (0..4u64)
        .flat_map(|r| (0..16u64).map(move |w| (r + 1) * 10_000 + w))
        .sum();
    // The consumer's internal checksum is not reachable after the run, but
    // its final-round data must be in both copies.
    for w in 0..16u64 {
        assert_eq!(cluster.read_shared(&data, w), 4 * 10_000 + w);
    }
    let _ = expect;
    // Fenced producer + counter filtering: the consumer never saw a stale
    // round value as current (verified inside Consumer when embedded in
    // unit tests; here we check convergence).
}

#[test]
fn telegraphos_ii_full_stack() {
    let mut cluster = ClusterBuilder::new(3)
        .hib_config(HibConfig::telegraphos_ii())
        .timing(TimingConfig::telegraphos_ii())
        .build();
    let page = cluster.alloc_shared(2);
    let local = cluster.alloc_shared(0);
    cluster.set_process(
        0,
        Script::new(vec![
            Action::FetchAdd(page.va(0), 3),
            Action::CompareSwap(page.va(8), 0, 7),
            Action::Copy {
                from: page.va(0),
                to: local.va(0),
                words: 2,
            },
            Action::Fence,
        ]),
    );
    cluster.run();
    assert_eq!(cluster.read_shared(&page, 0), 3);
    assert_eq!(cluster.read_shared(&page, 1), 7);
}

#[test]
fn reads_survive_heavy_cross_traffic() {
    // A reader's blocking reads interleave with two writers hammering the
    // same home node; back-pressure may slow everything but nothing may be
    // lost or reordered per source.
    let mut cluster = ClusterBuilder::new(4).build();
    let page = cluster.alloc_shared(3);
    cluster.set_process(1, stream_writes(&page, 500));
    cluster.set_process(2, {
        // Writer 2 writes to the upper half of the page.
        let acts = (0..500u64)
            .map(|i| Action::Write(page.va(4096 + (i % 512) * 8), 7_000 + i))
            .collect();
        Script::new(acts)
    });
    cluster.set_process(0, stream_reads(&page, 50));
    cluster.run();
    assert!(cluster.all_halted());
    // Last values from both writers are present.
    assert_eq!(cluster.read_shared(&page, 499), 500); // writer 1's last store
    let w2_last = cluster.read_shared(&page, 512 + 499);
    assert_eq!(w2_last, 7_499);
    // Reads were slower than the uncontended 7.2us on average, never lost.
    let s = cluster.node(0).stats();
    assert_eq!(s.remote_reads.count(), 50);
    assert!(s.remote_reads.mean() >= 6.7);
}

#[test]
fn fabric_accounting_is_consistent() {
    let mut cluster = ClusterBuilder::new(2).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(0, stream_writes(&page, 100));
    cluster.run();
    // Every write generates a request and an ack through the one switch:
    // 200 packets minimum.
    assert!(cluster.fabric_packets() >= 200);
    let hib_tx = cluster.node(0).hib_stats().pkts_tx + cluster.node(1).hib_stats().pkts_tx;
    assert_eq!(cluster.fabric_packets(), hib_tx, "switch saw every packet");
}
