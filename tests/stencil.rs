//! End-to-end stencil verification: the distributed Jacobi sweep over
//! eager-update boundary pages must agree bit-for-bit with the sequential
//! reference, across node counts and iteration counts.

use telegraphos::ClusterBuilder;
use tg_workloads::{jacobi_reference, JacobiShared, JacobiWorker};

fn run_jacobi(nodes: u16, strip_len: usize, iters: u32) -> (Vec<u64>, Vec<u64>) {
    let (left_bc, right_bc) = (900u64, 100u64);
    let total = strip_len * nodes as usize;
    let initial: Vec<u64> = (0..total).map(|i| (i as u64 * 53) % 777).collect();

    let mut cluster = ClusterBuilder::new(nodes).build();
    let boundary: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    for n in 0..nodes {
        let mut consumers = Vec::new();
        if n > 0 {
            consumers.push(n - 1);
        }
        if n + 1 < nodes {
            consumers.push(n + 1);
        }
        if !consumers.is_empty() {
            cluster.make_eager(&boundary[n as usize], &consumers);
        }
    }
    let results: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    let coord = cluster.alloc_shared(0);

    for n in 0..nodes {
        let i = n as usize;
        let strip = initial[i * strip_len..(i + 1) * strip_len].to_vec();
        let shared = JacobiShared {
            my_boundary: boundary[i],
            left_boundary: (n > 0).then(|| boundary[i - 1]),
            right_boundary: (n + 1 < nodes).then(|| boundary[i + 1]),
            result: results[i],
            barrier_counter: coord.va(0),
            barrier_sense: coord.va(8),
        };
        cluster.set_process(
            n,
            JacobiWorker::new(shared, u64::from(nodes), iters, strip, left_bc, right_bc),
        );
    }
    cluster.run();
    assert!(cluster.all_halted(), "stencil deadlocked");

    let mut distributed = Vec::with_capacity(total);
    for page in &results {
        for w in 0..strip_len {
            distributed.push(cluster.read_shared(page, w as u64));
        }
    }
    (
        distributed,
        jacobi_reference(&initial, iters, left_bc, right_bc),
    )
}

#[test]
fn two_nodes_match_reference() {
    let (got, want) = run_jacobi(2, 8, 6);
    assert_eq!(got, want);
}

#[test]
fn three_nodes_match_reference() {
    let (got, want) = run_jacobi(3, 5, 9);
    assert_eq!(got, want);
}

#[test]
fn five_nodes_many_iterations_match_reference() {
    let (got, want) = run_jacobi(5, 4, 20);
    assert_eq!(got, want);
}

#[test]
fn single_cell_strips_match_reference() {
    // The degenerate case: every node holds one cell, so both edges of a
    // strip are the same word and every value crosses the network each
    // iteration.
    let (got, want) = run_jacobi(4, 1, 7);
    assert_eq!(got, want);
}

/// Regression test for switch-arbitration starvation: with the old single
/// shared round-robin pointer, node 0's reply traffic kept resetting the
/// arbitration state of the contended output toward node 0, so the
/// highest-numbered input port never won a grant and the barrier livelocked
/// at 15+ nodes (spin-reads forever, simulated time unbounded). Per-output
/// pointers drain this configuration; the event cap turns any relapse into
/// a fast failure instead of a hung test.
#[test]
fn sixteen_nodes_drain_and_match_reference() {
    let nodes = 16u16;
    let strip_len = 4usize;
    let iters = 3u32;
    let (left_bc, right_bc) = (900u64, 100u64);
    let total = strip_len * nodes as usize;
    let initial: Vec<u64> = (0..total).map(|i| (i as u64 * 53) % 777).collect();
    let mut cluster = ClusterBuilder::new(nodes).build();
    let boundary: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    for n in 0..nodes {
        let mut consumers = Vec::new();
        if n > 0 {
            consumers.push(n - 1);
        }
        if n + 1 < nodes {
            consumers.push(n + 1);
        }
        cluster.make_eager(&boundary[n as usize], &consumers);
    }
    let results: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    let coord = cluster.alloc_shared(0);
    for n in 0..nodes {
        let i = n as usize;
        let strip = initial[i * strip_len..(i + 1) * strip_len].to_vec();
        let shared = JacobiShared {
            my_boundary: boundary[i],
            left_boundary: (n > 0).then(|| boundary[i - 1]),
            right_boundary: (n + 1 < nodes).then(|| boundary[i + 1]),
            result: results[i],
            barrier_counter: coord.va(0),
            barrier_sense: coord.va(8),
        };
        cluster.set_process(
            n,
            JacobiWorker::new(shared, u64::from(nodes), iters, strip, left_bc, right_bc),
        );
    }
    let limit = cluster.run_events(2_000_000);
    assert_eq!(limit, tg_sim::RunLimit::Drained, "stencil livelocked");
    assert!(cluster.all_halted(), "stencil deadlocked");
    let mut distributed = Vec::with_capacity(total);
    for page in &results {
        for w in 0..strip_len {
            distributed.push(cluster.read_shared(page, w as u64));
        }
    }
    let want = jacobi_reference(&initial, iters, left_bc, right_bc);
    assert_eq!(distributed, want);
}

/// The distributed stencil agrees with the sequential reference for any
/// node count, strip length and iteration count (randomized sweep from a
/// fixed seed).
#[test]
fn distributed_always_matches_reference() {
    let mut rng = tg_sim::SimRng::new(0x57E1);
    for _ in 0..12 {
        let nodes = rng.range_between(2, 5) as u16;
        let strip_len = rng.range_between(1, 7) as usize;
        let iters = rng.range_between(1, 9) as u32;
        let (got, want) = run_jacobi(nodes, strip_len, iters);
        assert_eq!(
            got, want,
            "nodes={nodes} strip_len={strip_len} iters={iters}"
        );
    }
}
