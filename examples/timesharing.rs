//! Multiprogramming one workstation (§2.2.4): a paging-bound process and a
//! compute-bound process share the CPU. Pager faults block in the OS, so
//! the scheduler overlaps them with computation — while each process
//! launches HIB operations through its *own* Telegraphos context, with no
//! state saved or restored at the network interface across switches.
//!
//! Run with: `cargo run --example timesharing`

use telegraphos::{Action, Backing, ClusterBuilder, Script};
use tg_sim::SimTime;
use tg_wire::NodeId;

fn run(multiprogrammed: bool) -> f64 {
    let mut cluster = ClusterBuilder::new(2).build();
    let pages = cluster.make_paged(
        0,
        Backing::RemoteMemory {
            server: NodeId::new(1),
        },
        8,
        1, // one resident slot: every touch faults
    );
    cluster.set_process(
        0,
        Script::new(pages.iter().map(|va| Action::Read(*va)).collect()),
    );
    if multiprogrammed {
        cluster.add_process(
            0,
            Script::new(
                (0..250)
                    .map(|_| Action::Compute(SimTime::from_us(10)))
                    .collect(),
            ),
        );
    }
    cluster.run();
    assert!(cluster.all_halted());
    cluster.now().as_us_f64()
}

fn main() {
    let paging_alone = run(false);
    let compute_alone = 2_500.0;
    let together = run(true);
    println!("paging process alone:   {paging_alone:>7.0} us (8 remote-pager faults)");
    println!("compute process alone:  {compute_alone:>7.0} us (250 x 10 us chunks)");
    println!(
        "serial sum:             {:>7.0} us",
        paging_alone + compute_alone
    );
    println!("multiprogrammed:        {together:>7.0} us");
    let saved = paging_alone + compute_alone - together;
    println!(
        "overlap recovered {saved:.0} us — {:.0}% of the shorter job",
        saved / paging_alone.min(compute_alone) * 100.0
    );
    assert!(together < (paging_alone + compute_alone) * 0.8);
    println!("ok: OS-level blocking overlaps with computation");
}
