//! Distributed 1-D Jacobi heat diffusion on four workstations: strips are
//! private, edge cells travel through eager-update multicast pages
//! (§2.2.7), iterations synchronize with the fence-embedding barrier — and
//! the distributed answer is checked against a sequential reference.
//!
//! Run with: `cargo run --example stencil_heat`

use telegraphos::ClusterBuilder;
use tg_workloads::{jacobi_reference, JacobiShared, JacobiWorker};

fn main() {
    let nodes = 4u16;
    let strip_len = 16usize;
    let iters = 12u32;
    let (left_bc, right_bc) = (1000u64, 0u64);

    // Initial field: a jagged ramp.
    let total = strip_len * nodes as usize;
    let initial: Vec<u64> = (0..total).map(|i| (i as u64 * 37) % 500).collect();

    let mut cluster = ClusterBuilder::new(nodes).build();

    // One boundary page per node, eager-mapped to its neighbors; one result
    // page per node; one coordination page for the barrier.
    let boundary: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    for n in 0..nodes {
        let mut consumers = Vec::new();
        if n > 0 {
            consumers.push(n - 1);
        }
        if n + 1 < nodes {
            consumers.push(n + 1);
        }
        cluster.make_eager(&boundary[n as usize], &consumers);
    }
    let results: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    let coord = cluster.alloc_shared(0);

    for n in 0..nodes {
        let i = n as usize;
        let strip = initial[i * strip_len..(i + 1) * strip_len].to_vec();
        let shared = JacobiShared {
            my_boundary: boundary[i],
            left_boundary: (n > 0).then(|| boundary[i - 1]),
            right_boundary: (n + 1 < nodes).then(|| boundary[i + 1]),
            result: results[i],
            barrier_counter: coord.va(0),
            barrier_sense: coord.va(8),
        };
        cluster.set_process(
            n,
            JacobiWorker::new(shared, u64::from(nodes), iters, strip, left_bc, right_bc),
        );
    }
    cluster.run();
    assert!(cluster.all_halted(), "stencil deadlocked");

    // Collect the distributed result and compare with the reference.
    let mut distributed = Vec::with_capacity(total);
    for (i, page) in results.iter().enumerate() {
        for w in 0..strip_len {
            let _ = i;
            distributed.push(cluster.read_shared(page, w as u64));
        }
    }
    let reference = jacobi_reference(&initial, iters, left_bc, right_bc);
    assert_eq!(distributed, reference, "distributed != sequential");

    println!(
        "jacobi: {total} cells on {nodes} nodes, {iters} iterations, done at {}",
        cluster.now()
    );
    println!("left boundary {left_bc}, right boundary {right_bc}");
    let preview: Vec<u64> = distributed.iter().step_by(8).copied().collect();
    println!("field (every 8th cell): {preview:?}");
    for n in 0..nodes {
        let s = cluster.node(n).stats();
        println!(
            "node {n}: {} local reads ({:.2} us), {} atomics, fences {:.2} us",
            s.local_reads.count(),
            s.local_reads.mean(),
            s.atomics.count(),
            s.fences.mean()
        );
    }
    println!("ok: distributed result matches the sequential reference");
}
