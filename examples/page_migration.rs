//! Page-access counters and alarm-driven replication (§2.2.6): a node
//! hammers a remote page; after the armed threshold the HIB interrupts the
//! OS, which replicates the page locally — reads drop from ~7 µs to local
//! latency.
//!
//! Run with: `cargo run --example page_migration`

use telegraphos::{ClusterBuilder, ReplicatePolicy};
use tg_sim::SimTime;
use tg_workloads::hot_page_reader;

fn run(threshold: Option<u16>) -> (f64, u64, u64, u64) {
    let policy = if threshold.is_some() {
        ReplicatePolicy::OnAlarm
    } else {
        ReplicatePolicy::Never
    };
    let mut cluster = ClusterBuilder::new(2).replicate_policy(policy).build();
    let page = cluster.alloc_shared(1);
    // Put recognizable data on the home node.
    for w in 0..16 {
        cluster
            .node_mut(1)
            .segment_write(tg_wire::GOffset::from_page(page.home_page, w * 8), 100 + w);
    }
    if let Some(t) = threshold {
        cluster.arm_counters(0, &page, t, u16::MAX);
    }
    cluster.set_process(0, hot_page_reader(&page, 200, SimTime::from_us(25)));
    cluster.run();
    let s = cluster.node(0).stats();
    let mut reads = s.local_reads.clone();
    reads.merge(&s.remote_reads);
    (
        reads.mean(),
        s.remote_reads.count(),
        s.local_reads.count(),
        s.replications,
    )
}

fn main() {
    println!("hot-page reader, 200 reads, 25 us think time\n");
    println!(
        "{:<24} {:>10} {:>8} {:>8} {:>6}",
        "policy", "read (us)", "remote", "local", "repl"
    );
    for (name, threshold) in [
        ("never replicate", None),
        ("alarm at 32 reads", Some(32u16)),
        ("alarm at 8 reads", Some(8)),
    ] {
        let (mean, remote, local, repl) = run(threshold);
        println!("{name:<24} {mean:>10.2} {remote:>8} {local:>8} {repl:>6}");
    }
    println!(
        "\nAfter the alarm the OS pulls the page across with the hardware\n\
         page-fetch stream and remaps it; the HIB counters made the decision\n\
         cheap and precise (§2.2.6)."
    );
}
