//! Quickstart: a two-workstation Telegraphos cluster — the paper's §3.2
//! testbed — doing user-level remote writes, a blocking remote read, an
//! atomic fetch-and-increment, and a fence.
//!
//! Run with: `cargo run --example quickstart`

use telegraphos::{Action, ClusterBuilder, Script};

fn main() {
    // Two DEC-3000-class workstations on one Telegraphos switch.
    let mut cluster = ClusterBuilder::new(2).build();

    // The OS maps one shared page, physically resident on node 1, into
    // both address spaces ("the initialization phase that maps the shared
    // pages").
    let page = cluster.alloc_shared(1);

    // Node 0's program: plain stores into node 1's memory (each a single
    // store instruction!), a fence, an atomic, and a read back.
    cluster.set_process(
        0,
        Script::new(vec![
            Action::Write(page.va(0), 1234),
            Action::Write(page.va(8), 5678),
            Action::Fence,
            Action::FetchAdd(page.va(16), 5),
            Action::Read(page.va(0)),
        ]),
    );
    cluster.run();

    println!("simulated time: {}", cluster.now());
    println!(
        "node 1 memory: [{}, {}, {}]",
        cluster.read_shared(&page, 0),
        cluster.read_shared(&page, 1),
        cluster.read_shared(&page, 2),
    );

    let stats = cluster.node(0).stats();
    println!(
        "remote write: {:.2} us mean over {} ops (paper: 0.70 us)",
        stats.remote_writes.mean(),
        stats.remote_writes.count()
    );
    println!(
        "remote read:  {:.2} us (paper: 7.2 us)",
        stats.remote_reads.mean()
    );
    println!("atomic op:    {:.2} us", stats.atomics.mean());
    println!("fence stall:  {:.2} us", stats.fences.mean());

    assert_eq!(cluster.read_shared(&page, 0), 1234);
    assert_eq!(cluster.read_shared(&page, 1), 5678);
    assert_eq!(cluster.read_shared(&page, 2), 5);
    println!("\ncluster report:\n{}", cluster.report());
    println!("ok: all values landed in node 1's memory");
}
