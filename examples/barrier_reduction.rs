//! A bulk-synchronous parallel reduction on four workstations: each node
//! computes a partial sum in private memory, contributes it with a remote
//! fetch-and-add (§2.2.3), and synchronizes with the fence-embedding
//! sense-reversing barrier from `telegraphos::sync` (§2.3.5).
//!
//! Run with: `cargo run --example barrier_reduction`

use telegraphos::sync::{BarrierWait, SyncStep};
use telegraphos::{Action, ClusterBuilder, Process, Resume};
use tg_mem::VAddr;
use tg_sim::SimTime;

struct ReduceWorker {
    rank: u64,
    parties: u64,
    items: u64,
    sum_va: VAddr,
    counter: VAddr,
    sense: VAddr,
    result_out: VAddr,
    phase: Phase,
    acc: u64,
    i: u64,
    barrier: Option<BarrierWait>,
}

enum Phase {
    Compute,
    Contribute,
    EnterBarrier,
    Barrier,
    ReadResult,
    WriteBack,
    Done,
}

impl Process for ReduceWorker {
    fn resume(&mut self, r: Resume) -> Action {
        loop {
            match self.phase {
                Phase::Compute => {
                    if self.i < self.items {
                        // "Compute" one item: rank-dependent value.
                        self.acc += self.rank * 1000 + self.i;
                        self.i += 1;
                        return Action::Compute(SimTime::from_us(1));
                    }
                    self.phase = Phase::Contribute;
                }
                Phase::Contribute => {
                    self.phase = Phase::EnterBarrier;
                    self.barrier =
                        Some(BarrierWait::new(self.counter, self.sense, self.parties, 0));
                    return Action::FetchAdd(self.sum_va, self.acc);
                }
                Phase::EnterBarrier => {
                    // Discard the fetch&add result; the barrier starts its
                    // own arrival sequence.
                    self.phase = Phase::Barrier;
                    match self
                        .barrier
                        .as_mut()
                        .expect("armed in Contribute")
                        .step(Resume::Start)
                    {
                        SyncStep::Do(a) => return a,
                        SyncStep::Ready => unreachable!("barrier cannot be instant"),
                    }
                }
                Phase::Barrier => {
                    match self
                        .barrier
                        .as_mut()
                        .expect("barrier armed in Contribute")
                        .step(r)
                    {
                        SyncStep::Do(a) => return a,
                        SyncStep::Ready => self.phase = Phase::ReadResult,
                    }
                }
                Phase::ReadResult => {
                    self.phase = Phase::WriteBack;
                    return Action::Read(self.sum_va);
                }
                Phase::WriteBack => {
                    self.phase = Phase::Done;
                    return Action::Write(self.result_out, r.value());
                }
                Phase::Done => return Action::Halt,
            }
        }
    }
}

fn main() {
    let parties = 4u16;
    let items = 25u64;
    let mut cluster = ClusterBuilder::new(parties).build();
    let page = cluster.alloc_shared(0);
    let sum_va = page.va(0);
    let counter = page.va(8);
    let sense = page.va(16);

    for rank in 0..parties {
        cluster.set_process(
            rank,
            ReduceWorker {
                rank: u64::from(rank),
                parties: u64::from(parties),
                items,
                sum_va,
                counter,
                sense,
                result_out: page.va(32 + u64::from(rank) * 8),
                phase: Phase::Compute,
                acc: 0,
                i: 0,
                barrier: None,
            },
        );
    }
    cluster.run();
    assert!(cluster.all_halted(), "reduction hung");

    let expect: u64 = (0..u64::from(parties))
        .map(|r| (0..items).map(|i| r * 1000 + i).sum::<u64>())
        .sum();
    let global = cluster.read_shared(&page, 0);
    println!("global sum: {global} (expected {expect})");
    assert_eq!(global, expect);

    // Every node read the same total after the barrier.
    for rank in 0..parties {
        let seen = cluster.read_shared(&page, 4 + u64::from(rank));
        assert_eq!(seen, expect, "node {rank} saw a partial sum");
        let stats = cluster.node(rank).stats();
        println!(
            "node {rank}: atomics {:.2} us mean, fence {:.2} us, done at {}",
            stats.atomics.mean(),
            stats.fences.mean(),
            stats.halted_at.unwrap()
        );
    }
    println!("ok: all {parties} nodes agree after the barrier");
}
