//! Producer/consumer over three sharing modes: plain remote reads,
//! eager-update-style coherent replication (§2.3), and the software VSM
//! baseline — the §2.3.6 comparison, live.
//!
//! Run with: `cargo run --example producer_consumer`

use telegraphos::{Cluster, ClusterBuilder, SharedPage};
use tg_sim::SimTime;
use tg_workloads::{Consumer, PcConfig, Producer};

#[derive(Clone, Copy, Debug)]
enum Mode {
    RemoteOnly,
    CoherentUpdate,
    Vsm,
}

fn run(mode: Mode, words: u64, rounds: u64) -> (f64, f64, u64) {
    let mut cluster = ClusterBuilder::new(2).build();
    let data: SharedPage = cluster.alloc_shared(0);
    match mode {
        Mode::RemoteOnly => {}
        Mode::CoherentUpdate => cluster.make_coherent(&data, &[1]),
        Mode::Vsm => cluster.make_vsm(&data),
    }
    let flag = cluster.alloc_shared(1); // consumer spins locally
    let ack = cluster.alloc_shared(0); // producer spins locally
    let cfg = PcConfig {
        data,
        flag,
        ack,
        words,
        rounds,
        poll: SimTime::from_us(2),
        fence: true,
    };
    cluster.set_process(0, Producer::new(cfg));
    cluster.set_process(1, Consumer::new(cfg));
    cluster.run();
    assert!(cluster.all_halted(), "handshake deadlocked");
    verify(&cluster, &data, words, rounds, mode);
    let total = cluster.now().as_us_f64();
    let mut reads = cluster.node(1).stats().local_reads.clone();
    reads.merge(&cluster.node(1).stats().remote_reads);
    (total, reads.mean(), cluster.fabric_bytes())
}

fn verify(cluster: &Cluster, data: &SharedPage, words: u64, rounds: u64, mode: Mode) {
    // After the last round the producer's values must be globally visible.
    for w in 0..words {
        let expect = rounds * 10_000 + w;
        let got = match mode {
            // Under VSM the authoritative copy migrated to the producer's
            // frame; read it through the home ground truth only for the
            // hardware modes.
            Mode::Vsm => return,
            _ => cluster.read_shared(data, w),
        };
        assert_eq!(got, expect, "word {w}");
    }
}

fn main() {
    let (words, rounds) = (64, 10);
    println!("producer/consumer: {words} words x {rounds} rounds\n");
    println!(
        "{:<28} {:>12} {:>14} {:>12}",
        "data-page mode", "total (us)", "cons. read us", "wire bytes"
    );
    for (name, mode) in [
        ("remote reads (no caching)", Mode::RemoteOnly),
        ("coherent update (Telegraphos)", Mode::CoherentUpdate),
        ("VSM invalidate (software)", Mode::Vsm),
    ] {
        let (total, read, bytes) = run(mode, words, rounds);
        println!("{name:<28} {total:>12.1} {read:>14.2} {bytes:>12}");
    }
    println!(
        "\nThe coherent-update hardware turns every consumer read into a\n\
         local access — the §2.3.6 producer/consumer win."
    );
}
