/root/repo/target/release/deps/tg_proto-aec8bd0b31d0d0e0.d: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

/root/repo/target/release/deps/libtg_proto-aec8bd0b31d0d0e0.rlib: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

/root/repo/target/release/deps/libtg_proto-aec8bd0b31d0d0e0.rmeta: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

crates/proto/src/lib.rs:
crates/proto/src/abstract_net.rs:
crates/proto/src/cam.rs:
crates/proto/src/galactica.rs:
crates/proto/src/naive.rs:
crates/proto/src/owner.rs:
crates/proto/src/recorder.rs:
crates/proto/src/scenario.rs:
