/root/repo/target/release/deps/tg_hib-9ee5c6bea7f419de.d: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

/root/repo/target/release/deps/libtg_hib-9ee5c6bea7f419de.rlib: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

/root/repo/target/release/deps/libtg_hib-9ee5c6bea7f419de.rmeta: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

crates/hib/src/lib.rs:
crates/hib/src/config.rs:
crates/hib/src/hib.rs:
crates/hib/src/host.rs:
crates/hib/src/pagemode.rs:
crates/hib/src/regs.rs:
