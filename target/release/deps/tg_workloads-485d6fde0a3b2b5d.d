/root/repo/target/release/deps/tg_workloads-485d6fde0a3b2b5d.d: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libtg_workloads-485d6fde0a3b2b5d.rlib: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libtg_workloads-485d6fde0a3b2b5d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/phased.rs:
crates/workloads/src/scripts.rs:
crates/workloads/src/stencil.rs:
crates/workloads/src/trace.rs:
