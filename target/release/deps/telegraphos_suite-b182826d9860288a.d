/root/repo/target/release/deps/telegraphos_suite-b182826d9860288a.d: src/lib.rs

/root/repo/target/release/deps/libtelegraphos_suite-b182826d9860288a.rlib: src/lib.rs

/root/repo/target/release/deps/libtelegraphos_suite-b182826d9860288a.rmeta: src/lib.rs

src/lib.rs:
