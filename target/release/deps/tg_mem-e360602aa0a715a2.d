/root/repo/target/release/deps/tg_mem-e360602aa0a715a2.d: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

/root/repo/target/release/deps/libtg_mem-e360602aa0a715a2.rlib: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

/root/repo/target/release/deps/libtg_mem-e360602aa0a715a2.rmeta: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

crates/mem/src/lib.rs:
crates/mem/src/paddr.rs:
crates/mem/src/pagetable.rs:
crates/mem/src/phys.rs:
