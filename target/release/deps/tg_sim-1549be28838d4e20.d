/root/repo/target/release/deps/tg_sim-1549be28838d4e20.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libtg_sim-1549be28838d4e20.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libtg_sim-1549be28838d4e20.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
