/root/repo/target/release/deps/tg_hw-5de477376afe9fb9.d: crates/hw/src/lib.rs

/root/repo/target/release/deps/libtg_hw-5de477376afe9fb9.rlib: crates/hw/src/lib.rs

/root/repo/target/release/deps/libtg_hw-5de477376afe9fb9.rmeta: crates/hw/src/lib.rs

crates/hw/src/lib.rs:
