/root/repo/target/release/deps/tg_wire-11154d4a1d6845e5.d: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

/root/repo/target/release/deps/libtg_wire-11154d4a1d6845e5.rlib: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

/root/repo/target/release/deps/libtg_wire-11154d4a1d6845e5.rmeta: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

crates/wire/src/lib.rs:
crates/wire/src/addr.rs:
crates/wire/src/ids.rs:
crates/wire/src/msg.rs:
crates/wire/src/timing.rs:
