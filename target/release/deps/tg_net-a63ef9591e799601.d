/root/repo/target/release/deps/tg_net-a63ef9591e799601.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libtg_net-a63ef9591e799601.rlib: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libtg_net-a63ef9591e799601.rmeta: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/port.rs:
crates/net/src/route.rs:
crates/net/src/switch.rs:
crates/net/src/testing.rs:
crates/net/src/topology.rs:
