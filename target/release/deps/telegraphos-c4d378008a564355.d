/root/repo/target/release/deps/telegraphos-c4d378008a564355.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

/root/repo/target/release/deps/libtelegraphos-c4d378008a564355.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

/root/repo/target/release/deps/libtelegraphos-c4d378008a564355.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/event.rs:
crates/core/src/node.rs:
crates/core/src/os.rs:
crates/core/src/pager.rs:
crates/core/src/process.rs:
crates/core/src/stats.rs:
crates/core/src/sync.rs:
crates/core/src/vsm.rs:
