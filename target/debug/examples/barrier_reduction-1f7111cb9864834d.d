/root/repo/target/debug/examples/barrier_reduction-1f7111cb9864834d.d: examples/barrier_reduction.rs

/root/repo/target/debug/examples/barrier_reduction-1f7111cb9864834d: examples/barrier_reduction.rs

examples/barrier_reduction.rs:
