/root/repo/target/debug/examples/stencil_heat-5de3645147518207.d: examples/stencil_heat.rs

/root/repo/target/debug/examples/stencil_heat-5de3645147518207: examples/stencil_heat.rs

examples/stencil_heat.rs:
