/root/repo/target/debug/examples/timesharing-f6008d737077c219.d: examples/timesharing.rs

/root/repo/target/debug/examples/timesharing-f6008d737077c219: examples/timesharing.rs

examples/timesharing.rs:
