/root/repo/target/debug/examples/quickstart-ce2ddabea3998d53.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ce2ddabea3998d53: examples/quickstart.rs

examples/quickstart.rs:
