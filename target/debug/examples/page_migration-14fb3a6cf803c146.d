/root/repo/target/debug/examples/page_migration-14fb3a6cf803c146.d: examples/page_migration.rs

/root/repo/target/debug/examples/page_migration-14fb3a6cf803c146: examples/page_migration.rs

examples/page_migration.rs:
