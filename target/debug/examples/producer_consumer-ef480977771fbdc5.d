/root/repo/target/debug/examples/producer_consumer-ef480977771fbdc5.d: examples/producer_consumer.rs

/root/repo/target/debug/examples/producer_consumer-ef480977771fbdc5: examples/producer_consumer.rs

examples/producer_consumer.rs:
