/root/repo/target/debug/deps/tg_workloads-e0a55199bd45e30c.d: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/tg_workloads-e0a55199bd45e30c: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/phased.rs:
crates/workloads/src/scripts.rs:
crates/workloads/src/stencil.rs:
crates/workloads/src/trace.rs:
