/root/repo/target/debug/deps/hib_behavior-158c38d6af05db4a.d: crates/hib/tests/hib_behavior.rs

/root/repo/target/debug/deps/hib_behavior-158c38d6af05db4a: crates/hib/tests/hib_behavior.rs

crates/hib/tests/hib_behavior.rs:
