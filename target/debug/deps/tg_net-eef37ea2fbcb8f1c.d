/root/repo/target/debug/deps/tg_net-eef37ea2fbcb8f1c.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/tg_net-eef37ea2fbcb8f1c: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/port.rs:
crates/net/src/route.rs:
crates/net/src/switch.rs:
crates/net/src/testing.rs:
crates/net/src/topology.rs:
