/root/repo/target/debug/deps/telegraphos-2a75888278f073ff.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

/root/repo/target/debug/deps/libtelegraphos-2a75888278f073ff.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

/root/repo/target/debug/deps/libtelegraphos-2a75888278f073ff.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/event.rs:
crates/core/src/node.rs:
crates/core/src/os.rs:
crates/core/src/pager.rs:
crates/core/src/process.rs:
crates/core/src/stats.rs:
crates/core/src/sync.rs:
crates/core/src/vsm.rs:
