/root/repo/target/debug/deps/tg_sim-d7c9e50b203c3439.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libtg_sim-d7c9e50b203c3439.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libtg_sim-d7c9e50b203c3439.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
