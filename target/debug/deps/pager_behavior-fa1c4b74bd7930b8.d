/root/repo/target/debug/deps/pager_behavior-fa1c4b74bd7930b8.d: crates/core/tests/pager_behavior.rs

/root/repo/target/debug/deps/pager_behavior-fa1c4b74bd7930b8: crates/core/tests/pager_behavior.rs

crates/core/tests/pager_behavior.rs:
