/root/repo/target/debug/deps/cluster_props-8465219b720b27c2.d: crates/core/tests/cluster_props.rs

/root/repo/target/debug/deps/cluster_props-8465219b720b27c2: crates/core/tests/cluster_props.rs

crates/core/tests/cluster_props.rs:
