/root/repo/target/debug/deps/experiment_shapes-7f7c6878d08ad155.d: crates/bench/tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-7f7c6878d08ad155: crates/bench/tests/experiment_shapes.rs

crates/bench/tests/experiment_shapes.rs:
