/root/repo/target/debug/deps/telegraphos_suite-d5296c4718ef75d8.d: src/lib.rs

/root/repo/target/debug/deps/telegraphos_suite-d5296c4718ef75d8: src/lib.rs

src/lib.rs:
