/root/repo/target/debug/deps/tg_mem-c7be5c86aa0cc62d.d: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

/root/repo/target/debug/deps/libtg_mem-c7be5c86aa0cc62d.rlib: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

/root/repo/target/debug/deps/libtg_mem-c7be5c86aa0cc62d.rmeta: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

crates/mem/src/lib.rs:
crates/mem/src/paddr.rs:
crates/mem/src/pagetable.rs:
crates/mem/src/phys.rs:
