/root/repo/target/debug/deps/tg_bench-e145e58a47a34f7d.d: crates/bench/src/lib.rs crates/bench/src/coherence.rs crates/bench/src/micro.rs crates/bench/src/replication.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/libtg_bench-e145e58a47a34f7d.rlib: crates/bench/src/lib.rs crates/bench/src/coherence.rs crates/bench/src/micro.rs crates/bench/src/replication.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/libtg_bench-e145e58a47a34f7d.rmeta: crates/bench/src/lib.rs crates/bench/src/coherence.rs crates/bench/src/micro.rs crates/bench/src/replication.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/coherence.rs:
crates/bench/src/micro.rs:
crates/bench/src/replication.rs:
crates/bench/src/scale.rs:
