/root/repo/target/debug/deps/tg_mem-34690ebbceee62e0.d: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

/root/repo/target/debug/deps/tg_mem-34690ebbceee62e0: crates/mem/src/lib.rs crates/mem/src/paddr.rs crates/mem/src/pagetable.rs crates/mem/src/phys.rs

crates/mem/src/lib.rs:
crates/mem/src/paddr.rs:
crates/mem/src/pagetable.rs:
crates/mem/src/phys.rs:
