/root/repo/target/debug/deps/tg_hib-b02e76fce527911a.d: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

/root/repo/target/debug/deps/libtg_hib-b02e76fce527911a.rlib: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

/root/repo/target/debug/deps/libtg_hib-b02e76fce527911a.rmeta: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

crates/hib/src/lib.rs:
crates/hib/src/config.rs:
crates/hib/src/hib.rs:
crates/hib/src/host.rs:
crates/hib/src/pagemode.rs:
crates/hib/src/regs.rs:
