/root/repo/target/debug/deps/cluster_behavior-c56df7252eac3a08.d: crates/core/tests/cluster_behavior.rs

/root/repo/target/debug/deps/cluster_behavior-c56df7252eac3a08: crates/core/tests/cluster_behavior.rs

crates/core/tests/cluster_behavior.rs:
