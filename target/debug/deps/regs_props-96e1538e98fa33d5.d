/root/repo/target/debug/deps/regs_props-96e1538e98fa33d5.d: crates/hib/tests/regs_props.rs

/root/repo/target/debug/deps/regs_props-96e1538e98fa33d5: crates/hib/tests/regs_props.rs

crates/hib/tests/regs_props.rs:
