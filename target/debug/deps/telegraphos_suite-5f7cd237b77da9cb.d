/root/repo/target/debug/deps/telegraphos_suite-5f7cd237b77da9cb.d: src/lib.rs

/root/repo/target/debug/deps/libtelegraphos_suite-5f7cd237b77da9cb.rlib: src/lib.rs

/root/repo/target/debug/deps/libtelegraphos_suite-5f7cd237b77da9cb.rmeta: src/lib.rs

src/lib.rs:
