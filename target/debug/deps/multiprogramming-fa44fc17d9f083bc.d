/root/repo/target/debug/deps/multiprogramming-fa44fc17d9f083bc.d: crates/core/tests/multiprogramming.rs

/root/repo/target/debug/deps/multiprogramming-fa44fc17d9f083bc: crates/core/tests/multiprogramming.rs

crates/core/tests/multiprogramming.rs:
