/root/repo/target/debug/deps/tg_hw-b15090379e390df3.d: crates/hw/src/lib.rs

/root/repo/target/debug/deps/libtg_hw-b15090379e390df3.rlib: crates/hw/src/lib.rs

/root/repo/target/debug/deps/libtg_hw-b15090379e390df3.rmeta: crates/hw/src/lib.rs

crates/hw/src/lib.rs:
