/root/repo/target/debug/deps/protocol_props-22f2014b2759d4b8.d: crates/proto/tests/protocol_props.rs

/root/repo/target/debug/deps/protocol_props-22f2014b2759d4b8: crates/proto/tests/protocol_props.rs

crates/proto/tests/protocol_props.rs:
