/root/repo/target/debug/deps/tg_hw-dcdf39480493da91.d: crates/hw/src/lib.rs

/root/repo/target/debug/deps/tg_hw-dcdf39480493da91: crates/hw/src/lib.rs

crates/hw/src/lib.rs:
