/root/repo/target/debug/deps/network-889b28fc54068d39.d: crates/net/tests/network.rs

/root/repo/target/debug/deps/network-889b28fc54068d39: crates/net/tests/network.rs

crates/net/tests/network.rs:
