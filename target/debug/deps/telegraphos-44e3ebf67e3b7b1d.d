/root/repo/target/debug/deps/telegraphos-44e3ebf67e3b7b1d.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

/root/repo/target/debug/deps/telegraphos-44e3ebf67e3b7b1d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/event.rs crates/core/src/node.rs crates/core/src/os.rs crates/core/src/pager.rs crates/core/src/process.rs crates/core/src/stats.rs crates/core/src/sync.rs crates/core/src/vsm.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/event.rs:
crates/core/src/node.rs:
crates/core/src/os.rs:
crates/core/src/pager.rs:
crates/core/src/process.rs:
crates/core/src/stats.rs:
crates/core/src/sync.rs:
crates/core/src/vsm.rs:
