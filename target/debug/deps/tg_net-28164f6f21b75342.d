/root/repo/target/debug/deps/tg_net-28164f6f21b75342.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libtg_net-28164f6f21b75342.rlib: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libtg_net-28164f6f21b75342.rmeta: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/port.rs crates/net/src/route.rs crates/net/src/switch.rs crates/net/src/testing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/port.rs:
crates/net/src/route.rs:
crates/net/src/switch.rs:
crates/net/src/testing.rs:
crates/net/src/topology.rs:
