/root/repo/target/debug/deps/full_stack-ccf4eb45c7257caa.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-ccf4eb45c7257caa: tests/full_stack.rs

tests/full_stack.rs:
