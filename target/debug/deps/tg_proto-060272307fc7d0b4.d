/root/repo/target/debug/deps/tg_proto-060272307fc7d0b4.d: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

/root/repo/target/debug/deps/tg_proto-060272307fc7d0b4: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

crates/proto/src/lib.rs:
crates/proto/src/abstract_net.rs:
crates/proto/src/cam.rs:
crates/proto/src/galactica.rs:
crates/proto/src/naive.rs:
crates/proto/src/owner.rs:
crates/proto/src/recorder.rs:
crates/proto/src/scenario.rs:
