/root/repo/target/debug/deps/tg_bench-26ca84d80d099315.d: crates/bench/src/lib.rs crates/bench/src/coherence.rs crates/bench/src/micro.rs crates/bench/src/replication.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/tg_bench-26ca84d80d099315: crates/bench/src/lib.rs crates/bench/src/coherence.rs crates/bench/src/micro.rs crates/bench/src/replication.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/coherence.rs:
crates/bench/src/micro.rs:
crates/bench/src/replication.rs:
crates/bench/src/scale.rs:
