/root/repo/target/debug/deps/tg_sim-1f046b99dff297e6.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/tg_sim-1f046b99dff297e6: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
