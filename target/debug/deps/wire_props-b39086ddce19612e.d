/root/repo/target/debug/deps/wire_props-b39086ddce19612e.d: crates/wire/tests/wire_props.rs

/root/repo/target/debug/deps/wire_props-b39086ddce19612e: crates/wire/tests/wire_props.rs

crates/wire/tests/wire_props.rs:
