/root/repo/target/debug/deps/tg_proto-5af415b922411439.d: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

/root/repo/target/debug/deps/libtg_proto-5af415b922411439.rlib: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

/root/repo/target/debug/deps/libtg_proto-5af415b922411439.rmeta: crates/proto/src/lib.rs crates/proto/src/abstract_net.rs crates/proto/src/cam.rs crates/proto/src/galactica.rs crates/proto/src/naive.rs crates/proto/src/owner.rs crates/proto/src/recorder.rs crates/proto/src/scenario.rs

crates/proto/src/lib.rs:
crates/proto/src/abstract_net.rs:
crates/proto/src/cam.rs:
crates/proto/src/galactica.rs:
crates/proto/src/naive.rs:
crates/proto/src/owner.rs:
crates/proto/src/recorder.rs:
crates/proto/src/scenario.rs:
