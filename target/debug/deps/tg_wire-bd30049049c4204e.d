/root/repo/target/debug/deps/tg_wire-bd30049049c4204e.d: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

/root/repo/target/debug/deps/libtg_wire-bd30049049c4204e.rlib: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

/root/repo/target/debug/deps/libtg_wire-bd30049049c4204e.rmeta: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

crates/wire/src/lib.rs:
crates/wire/src/addr.rs:
crates/wire/src/ids.rs:
crates/wire/src/msg.rs:
crates/wire/src/timing.rs:
