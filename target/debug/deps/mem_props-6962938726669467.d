/root/repo/target/debug/deps/mem_props-6962938726669467.d: crates/mem/tests/mem_props.rs

/root/repo/target/debug/deps/mem_props-6962938726669467: crates/mem/tests/mem_props.rs

crates/mem/tests/mem_props.rs:
