/root/repo/target/debug/deps/tg_workloads-07a5adc52540faf6.d: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libtg_workloads-07a5adc52540faf6.rlib: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libtg_workloads-07a5adc52540faf6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/phased.rs crates/workloads/src/scripts.rs crates/workloads/src/stencil.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/phased.rs:
crates/workloads/src/scripts.rs:
crates/workloads/src/stencil.rs:
crates/workloads/src/trace.rs:
