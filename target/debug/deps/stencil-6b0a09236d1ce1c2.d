/root/repo/target/debug/deps/stencil-6b0a09236d1ce1c2.d: tests/stencil.rs

/root/repo/target/debug/deps/stencil-6b0a09236d1ce1c2: tests/stencil.rs

tests/stencil.rs:
