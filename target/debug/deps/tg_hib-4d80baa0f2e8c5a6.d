/root/repo/target/debug/deps/tg_hib-4d80baa0f2e8c5a6.d: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

/root/repo/target/debug/deps/tg_hib-4d80baa0f2e8c5a6: crates/hib/src/lib.rs crates/hib/src/config.rs crates/hib/src/hib.rs crates/hib/src/host.rs crates/hib/src/pagemode.rs crates/hib/src/regs.rs

crates/hib/src/lib.rs:
crates/hib/src/config.rs:
crates/hib/src/hib.rs:
crates/hib/src/host.rs:
crates/hib/src/pagemode.rs:
crates/hib/src/regs.rs:
