/root/repo/target/debug/deps/tg_wire-831bd1aed84fafa9.d: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

/root/repo/target/debug/deps/tg_wire-831bd1aed84fafa9: crates/wire/src/lib.rs crates/wire/src/addr.rs crates/wire/src/ids.rs crates/wire/src/msg.rs crates/wire/src/timing.rs

crates/wire/src/lib.rs:
crates/wire/src/addr.rs:
crates/wire/src/ids.rs:
crates/wire/src/msg.rs:
crates/wire/src/timing.rs:
