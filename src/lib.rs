//! # telegraphos-suite
//!
//! Workspace umbrella for the Telegraphos reproduction. This crate carries
//! the repository-level integration tests (`tests/`) and runnable examples
//! (`examples/`); the actual functionality lives in the member crates and is
//! re-exported here for convenience.

pub mod harness;

pub use telegraphos as core;
pub use tg_analyze as analyze;
pub use tg_hib as hib;
pub use tg_hw as hw;
pub use tg_kv as kv;
pub use tg_mem as mem;
pub use tg_net as net;
pub use tg_proto as proto;
pub use tg_sim as sim;
pub use tg_wire as wire;
pub use tg_workloads as workloads;
