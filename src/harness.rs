//! Shared workload harness for the suite binaries.
//!
//! `simtrace`, `simreport` and `simbench` all drive the same two
//! canonical workloads — the all-pairs ring ping-pong and the N-node
//! Jacobi stencil over eager-update boundary pages — so the builders
//! live here once. Keeping one construction path is what makes the CI
//! perf-gate baselines meaningful: every binary's "stencil_16" is
//! byte-for-byte the same cluster.

use telegraphos::{
    Action, Cluster, ClusterBuilder, DetectParams, FaultPlan, RelParams, RetxMode, Script,
    SharedPage, Topology,
};
use tg_sim::{RunLimit, SimTime};
use tg_wire::NodeId;
use tg_workloads::{jacobi_reference, JacobiShared, JacobiWorker};

/// Reliability / fault-injection knobs shared by every harness workload.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Cluster size (≥ 2).
    pub nodes: u16,
    /// Run the link-level reliability protocol.
    pub reliable: bool,
    /// Seeded frame-drop probability (implies `reliable` at the CLI).
    pub drop: f64,
    /// Seeded frame-corruption probability (implies `reliable`).
    pub corrupt: f64,
    /// Seeded control-frame drop probability — acks, nacks and resync
    /// handshakes silently lost (implies `reliable`).
    pub ctrl_drop: f64,
    /// Seeded control-frame corruption probability — the receiver
    /// discards the frame on its checksum (implies `reliable`).
    pub ctrl_corrupt: f64,
    /// Retransmit discipline for reliable links.
    pub mode: RetxMode,
    /// Fault-injector seed.
    pub fault_seed: u64,
    /// Run per-link heartbeats (crash-stop failure detection) during the
    /// workload. Implied by any crash-stop fault below — a crashed peer
    /// can only be convicted, and blocked ops only resolved, by the
    /// detector.
    pub heartbeats: bool,
    /// Crash workstation `(node, at_us)`. Permanent unless `restart_us`
    /// closes the window.
    pub crash: Option<(u16, u64)>,
    /// Restart time (µs) closing the crash window of [`Self::crash`].
    pub restart_us: Option<u64>,
    /// Take switch `(s, from_us, until_us)` out — crash-stop silence on
    /// every link touching it. Switches the fabric to a ring of one
    /// switch per node so surviving routes exist to recompute onto.
    pub switch_out: Option<(u16, u64, u64)>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            nodes: 4,
            reliable: false,
            drop: 0.0,
            corrupt: 0.0,
            ctrl_drop: 0.0,
            ctrl_corrupt: 0.0,
            mode: RetxMode::GoBackN,
            fault_seed: 0xFA_0001,
            heartbeats: false,
            crash: None,
            restart_us: None,
            switch_out: None,
        }
    }
}

impl HarnessOptions {
    /// True if any seeded fault probability is non-zero or a crash-stop
    /// window is scheduled.
    pub fn any_faults(&self) -> bool {
        self.drop > 0.0
            || self.corrupt > 0.0
            || self.ctrl_drop > 0.0
            || self.ctrl_corrupt > 0.0
            || self.crash.is_some()
            || self.switch_out.is_some()
    }

    /// True when a crash-stop window (node crash or switch outage) is
    /// scheduled: such runs never drain on their own and must be driven
    /// with heartbeats through [`run_cluster`].
    pub fn any_crash(&self) -> bool {
        self.crash.is_some() || self.switch_out.is_some()
    }
}

/// A cluster builder reflecting the reliability / fault options.
pub fn builder(opts: &HarnessOptions) -> ClusterBuilder {
    let mut b = ClusterBuilder::new(opts.nodes);
    if opts.switch_out.is_some() {
        b = b.topology(Topology::ring(opts.nodes));
    }
    if opts.reliable {
        b = b.reliable_links(RelParams::with_mode(opts.mode));
    }
    if opts.any_faults() {
        let mut plan = FaultPlan::new(opts.fault_seed)
            .drop(opts.drop)
            .corrupt(opts.corrupt)
            .ctrl_drop(opts.ctrl_drop)
            .ctrl_corrupt(opts.ctrl_corrupt);
        if let Some((node, at_us)) = opts.crash {
            plan = plan.node_crash(NodeId::new(node), SimTime::from_us(at_us));
            if let Some(restart_us) = opts.restart_us {
                plan = plan.node_restart(NodeId::new(node), SimTime::from_us(restart_us));
            }
        }
        if let Some((s, from_us, until_us)) = opts.switch_out {
            plan = plan.switch_outage(s, SimTime::from_us(from_us), SimTime::from_us(until_us));
        }
        b = b.with_faults(plan);
    }
    b
}

/// Drives `cluster` to completion the way the options demand: a plain
/// `run()` for fault-masked workloads, a stepped heartbeat-driven run for
/// crash-stop plans (whose event queues never drain on their own — the
/// detector must convict the dead and fail blocked ops). Returns `true`
/// when the surviving workload completed within the time limit.
pub fn run_cluster(cluster: &mut Cluster, opts: &HarnessOptions) -> bool {
    if opts.heartbeats || opts.any_crash() {
        cluster.enable_heartbeats(DetectParams::default());
        let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(200));
        outcome != RunLimit::Deadline
    } else {
        cluster.run();
        cluster.all_halted()
    }
}

/// Every node writes to / fences on / reads from / atomically increments
/// a page homed on its ring neighbor: remote writes, blocking reads and
/// atomic launches on every node, crossing the full fabric.
pub fn build_pingpong(opts: &HarnessOptions) -> Cluster {
    let nodes = opts.nodes;
    let mut cluster = builder(opts).build();
    let pages: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    for n in 0..nodes {
        let peer = &pages[((n + 1) % nodes) as usize];
        let mut actions = Vec::new();
        for round in 0..4u64 {
            actions.push(Action::Write(peer.va(0), round + 1));
            actions.push(Action::Fence);
            actions.push(Action::Read(peer.va(0)));
            actions.push(Action::FetchAdd(peer.va(8), 1));
            actions.push(Action::Compute(SimTime::from_ns(200)));
        }
        cluster.set_process(n, Script::new(actions));
    }
    cluster
}

/// What [`build_stencil`] leaves behind for result verification.
#[derive(Debug)]
pub struct StencilCheck {
    /// The sequential Jacobi reference result.
    pub want: Vec<u64>,
    /// The per-node result pages to read back.
    pub results: Vec<SharedPage>,
}

/// The N-node Jacobi stencil over eager-update boundary pages, `strip`
/// interior cells per node, `iters` sweeps, with the sequential
/// reference computed for verification. `simbench`'s `stencil_16` is
/// `nodes = 16, strip = 8, iters = 12`; `simtrace`'s trace-friendly
/// variant is `iters = 4`.
pub fn build_stencil(opts: &HarnessOptions, strip: usize, iters: u32) -> (Cluster, StencilCheck) {
    let nodes = opts.nodes;
    let (left_bc, right_bc) = (900u64, 100u64);
    let total = strip * nodes as usize;
    let initial: Vec<u64> = (0..total).map(|i| (i as u64 * 53) % 777).collect();

    let mut cluster = builder(opts).build();
    let boundary: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    for n in 0..nodes {
        let mut consumers = Vec::new();
        if n > 0 {
            consumers.push(n - 1);
        }
        if n + 1 < nodes {
            consumers.push(n + 1);
        }
        cluster.make_eager(&boundary[n as usize], &consumers);
    }
    let results: Vec<_> = (0..nodes).map(|n| cluster.alloc_shared(n)).collect();
    let coord = cluster.alloc_shared(0);
    for n in 0..nodes {
        let i = n as usize;
        let strip_cells = initial[i * strip..(i + 1) * strip].to_vec();
        let shared = JacobiShared {
            my_boundary: boundary[i],
            left_boundary: (n > 0).then(|| boundary[i - 1]),
            right_boundary: (n + 1 < nodes).then(|| boundary[i + 1]),
            result: results[i],
            barrier_counter: coord.va(0),
            barrier_sense: coord.va(8),
        };
        cluster.set_process(
            n,
            JacobiWorker::new(
                shared,
                u64::from(nodes),
                iters,
                strip_cells,
                left_bc,
                right_bc,
            ),
        );
    }
    let want = jacobi_reference(&initial, iters, left_bc, right_bc);
    (cluster, StencilCheck { want, results })
}

/// The replicated KV service deployed on a fabric that reflects the
/// fault options. The topology is always a ring — the campaign's
/// switch-outage scenarios need surviving routes to recompute onto, and
/// the healthy scenarios must measure the same fabric they are compared
/// against. Heartbeats are enabled unconditionally: the service's
/// failover path runs on conviction verdicts.
pub fn build_kv(opts: &HarnessOptions, cfg: &tg_kv::KvConfig) -> (Cluster, tg_kv::KvHandles) {
    let mut opts = opts.clone();
    opts.nodes = cfg.nodes_required();
    let mut cluster = builder(&opts).topology(Topology::ring(opts.nodes)).build();
    cluster.enable_heartbeats(DetectParams::default());
    let handles = tg_kv::deploy(&mut cluster, cfg);
    (cluster, handles)
}

/// Reads the stencil result back and compares it to the sequential
/// reference, returning a description of the first divergence.
pub fn verify_stencil(cluster: &Cluster, check: &StencilCheck) -> Result<(), String> {
    let strip = check.want.len() / check.results.len();
    let mut got = Vec::with_capacity(check.want.len());
    for page in &check.results {
        for w in 0..strip {
            got.push(cluster.read_shared(page, w as u64));
        }
    }
    if got != check.want {
        return Err(format!(
            "stencil diverged from reference: got {:?}, want {:?}",
            got, check.want
        ));
    }
    Ok(())
}
