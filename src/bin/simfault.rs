//! `simfault` — seeded fault campaigns against the reliable fabric.
//!
//! Runs a fixed cluster workload under a matrix of fault scenarios
//! (frame drops, corruption, a link outage window, credit loss, and a
//! hostile control plane that drops or corrupts acks/nacks/resyncs) ×
//! seeds × retransmit disciplines (go-back-N and selective retransmit),
//! and checks that every faulted run is *fully masked*: same final
//! memory contents and operation counts as the fault-free reference, no
//! dead links, and the quiescence-time conservation invariants intact.
//!
//! A recovery-latency vs drop-rate sweep then runs many seeds per point
//! through a [`tg_sim::LogHistogram`], reporting p50/p99 recovery
//! latency and the wire cost (retransmitted frames and bytes) per
//! discipline — the E19 wire-efficiency comparison. The campaign
//! hard-fails if selective retransmit does not beat go-back-N on
//! retransmitted bytes at drop rates ≥ 5%.
//!
//! A crash-stop campaign follows (E20): node crash, crash + restart, a
//! routed-around switch outage and a disconnecting partition, per
//! discipline. Every scenario must be *detected* (heartbeat conviction),
//! *survived* (survivors complete; in-flight ops to the dead fail
//! structurally; a disconnecting cut is named as a partition) and
//! *replayed bit for bit* under the same seed; detection and recovery
//! latency go through p50/p99 log-histograms into the report. A final
//! gate bounds heartbeat overhead on the zero-fault reliable ping-pong
//! workload at 2% of mean remote-op latency.
//!
//! Usage: `simfault [--seeds N] [--sweep-seeds N] [--report FILE]`
//! (default 3 matrix seeds, 10 sweep seeds per point). `--report`
//! writes a `tg-report-v2` JSON document with the per-run recovery
//! metrics so the CI perf gate can diff fault-recovery behaviour
//! against a committed baseline — the whole campaign is seeded, so the
//! report is deterministic.

use std::process::ExitCode;

use telegraphos::{
    Action, Cluster, ClusterBuilder, DetectParams, FaultPlan, LinkId, RelParams, RetxMode, Script,
    SharedPage, Topology,
};
use telegraphos_suite::harness::{self, HarnessOptions};
use tg_analyze::{Json, SCHEMA};
use tg_sim::{LogHistogram, RunLimit, SimTime};
use tg_wire::trace::{Site, Stage};
use tg_wire::NodeId;

const NODES: u16 = 3;
const WRITES: u64 = 60;
const MODES: [(&str, RetxMode); 2] = [("gbn", RetxMode::GoBackN), ("sack", RetxMode::Sack)];
const SCENARIOS: [&str; 6] = [
    "drop",
    "corrupt",
    "outage",
    "creditloss",
    "ctrldrop",
    "ctrlcorrupt",
];
const SWEEP_PCTS: [u64; 4] = [1, 5, 15, 30];

/// The workload every run executes: two writer nodes stream writes into a
/// shared page on the third, fence, then read a sample back.
fn script(page: &SharedPage, base: u64) -> Script {
    let mut acts: Vec<Action> = (0..WRITES)
        .map(|i| Action::Write(page.va((base + i % 16) * 8), i + 1))
        .collect();
    acts.push(Action::Fence);
    acts.push(Action::Read(page.va(base * 8)));
    Script::new(acts)
}

fn build(plan: Option<FaultPlan>, mode: RetxMode) -> (Cluster, SharedPage) {
    let mut b = ClusterBuilder::new(NODES).reliable_links(RelParams::with_mode(mode));
    if let Some(p) = plan {
        b = b.with_faults(p);
    }
    let mut cluster = b.build();
    let page = cluster.alloc_shared(2);
    cluster.set_process(0, script(&page, 0));
    cluster.set_process(1, script(&page, 16));
    (cluster, page)
}

/// Everything a campaign compares between a faulted run and the
/// fault-free reference.
#[derive(PartialEq, Eq, Debug)]
struct Outcome {
    memory: Vec<u64>,
    writes: (u64, u64),
    reads: (u64, u64),
    fences: (u64, u64),
}

struct RunReport {
    outcome: Outcome,
    finished_at: SimTime,
    halted: bool,
    retransmits: u64,
    retx_bytes: u64,
    resyncs: u64,
    frames_lost: u64,
    corrupted: u64,
    credits_lost: u64,
    ctrl_lost: u64,
    ctrl_corrupted: u64,
    violations: Vec<String>,
    dead_links: bool,
}

fn run(plan: Option<FaultPlan>, mode: RetxMode) -> RunReport {
    let (mut cluster, page) = build(plan, mode);
    cluster.run();
    let memory: Vec<u64> = (0..32).map(|w| cluster.read_shared(&page, w)).collect();
    let st0 = cluster.node(0).stats();
    let st1 = cluster.node(1).stats();
    let fs = cluster.fault_stats();
    RunReport {
        outcome: Outcome {
            memory,
            writes: (st0.remote_writes.count(), st1.remote_writes.count()),
            reads: (st0.remote_reads.count(), st1.remote_reads.count()),
            fences: (st0.fences.count(), st1.fences.count()),
        },
        finished_at: cluster.now(),
        halted: cluster.all_halted(),
        retransmits: cluster.fabric_retransmits(),
        retx_bytes: cluster.fabric_retx_bytes(),
        resyncs: cluster.fabric_resyncs(),
        frames_lost: fs.as_ref().map_or(0, |s| s.drops + s.outage_drops),
        corrupted: fs.as_ref().map_or(0, |s| s.corrupts),
        credits_lost: fs.as_ref().map_or(0, |s| s.credits_lost),
        ctrl_lost: fs.as_ref().map_or(0, |s| s.ctrl_drops),
        ctrl_corrupted: fs.as_ref().map_or(0, |s| s.ctrl_corrupts),
        violations: cluster.conservation_violations(),
        dead_links: !cluster.link_errors().is_empty(),
    }
}

fn victim_uplink() -> LinkId {
    LinkId::new(Site::Node(NodeId::new(0)), Site::Switch(0))
}

fn scenario_plan(name: &str, seed: u64) -> FaultPlan {
    match name {
        "drop" => FaultPlan::new(seed).drop(0.20),
        "corrupt" => FaultPlan::new(seed).corrupt(0.15),
        "outage" => FaultPlan::new(seed).drop(0.05).outage(
            victim_uplink(),
            SimTime::from_us(5),
            SimTime::from_us(40),
        ),
        "creditloss" => FaultPlan::new(seed).credit_loss(0.5),
        // The hostile control plane: data faults force recovery traffic,
        // then the injector attacks the recovery protocol itself.
        "ctrldrop" => FaultPlan::new(seed).drop(0.10).ctrl_drop(0.25),
        "ctrlcorrupt" => FaultPlan::new(seed)
            .corrupt(0.10)
            .ctrl_corrupt(0.25)
            .credit_loss(0.1),
        other => panic!("unknown scenario {other}"),
    }
}

/// The crash-stop fault domains: a permanent node crash, a crash with a
/// later restart, a switch outage the ring routes around, and a chain cut
/// that disconnects the fabric.
const CRASH_SCENARIOS: [&str; 4] = ["crash", "crashrestart", "switchout", "partition"];

/// What a crash-stop run is judged and replay-compared on.
struct CrashOutcome {
    completed: bool,
    finished_at: SimTime,
    /// First heartbeat conviction after the crash window opened, in ns.
    detect_ns: Option<u64>,
    peer_downs: u64,
    peer_ups: u64,
    op_failures: u64,
    partition: Vec<u16>,
    violations: Vec<String>,
    fingerprint: String,
}

/// The crash-campaign workload: rounds of write / compute / read against
/// one page, sized to straddle the scenario's crash window.
fn pound(page: &SharedPage, rounds: u64) -> Script {
    let mut acts = Vec::new();
    for i in 0..rounds {
        acts.push(Action::Write(page.va((i % 16) * 8), i + 1));
        acts.push(Action::Compute(SimTime::from_us(20)));
        acts.push(Action::Read(page.va((i % 16) * 8)));
    }
    Script::new(acts)
}

/// One crash-stop run. `seed: None` builds the fault-free reference for
/// the same workload, topology and discipline, driven identically, so
/// finish-time deltas isolate what the crash cost.
fn crash_run(scenario: &str, mode: RetxMode, seed: Option<u64>) -> CrashOutcome {
    let params = RelParams::with_mode(mode);
    let faulted = seed.is_some();
    let seedv = seed.unwrap_or(0);
    let crash_from;
    let mut cluster = match scenario {
        "crash" | "crashrestart" => {
            crash_from = SimTime::from_us(200);
            let mut plan = FaultPlan::new(seedv).node_crash(NodeId::new(1), crash_from);
            let rounds = if scenario == "crashrestart" {
                plan = plan.node_restart(NodeId::new(1), SimTime::from_us(2_500));
                200
            } else {
                60
            };
            let mut b = ClusterBuilder::new(3).reliable_links(params);
            if faulted {
                b = b.with_faults(plan);
            }
            let mut cluster = b.build();
            let victim_page = cluster.alloc_shared(1);
            let survivor_page = cluster.alloc_shared(0);
            cluster.set_process(0, pound(&victim_page, rounds));
            cluster.set_process(2, pound(&survivor_page, 40));
            cluster
        }
        "switchout" => {
            crash_from = SimTime::from_us(100);
            let plan = FaultPlan::new(seedv).switch_outage(1, crash_from, SimTime::from_ms(100));
            let mut b = ClusterBuilder::new(4)
                .topology(Topology::ring(4))
                .reliable_links(params);
            if faulted {
                b = b.with_faults(plan);
            }
            let mut cluster = b.build();
            let page = cluster.alloc_shared(2);
            let mut acts = Vec::new();
            for i in 0..30u64 {
                acts.push(Action::Write(page.va((i % 16) * 8), 1000 + i));
                acts.push(Action::Compute(SimTime::from_us(25)));
            }
            acts.push(Action::Fence);
            cluster.set_process(0, Script::new(acts));
            cluster
        }
        "partition" => {
            crash_from = SimTime::from_us(50);
            let plan = FaultPlan::new(seedv).switch_outage(1, crash_from, SimTime::from_ms(500));
            let mut b = ClusterBuilder::new(3)
                .topology(Topology::chain(3))
                .reliable_links(params);
            if faulted {
                b = b.with_faults(plan);
            }
            let mut cluster = b.build();
            let page = cluster.alloc_shared(2);
            cluster.set_process(0, pound(&page, 20));
            cluster
        }
        other => panic!("unknown crash scenario {other}"),
    };
    let collector = cluster.enable_tracing();
    let mut partition = Vec::new();
    let completed = if scenario == "partition" && faulted {
        // Recovery is impossible across a disconnecting cut: the run must
        // degrade into a structured report naming the partition.
        cluster.enable_heartbeats(DetectParams::default());
        match cluster.run_watchdog(SimTime::from_us(300)) {
            Err(report) => {
                partition = report.partition.iter().map(|n| n.raw()).collect();
                !partition.is_empty()
            }
            Ok(_) => false,
        }
    } else {
        cluster.enable_heartbeats(DetectParams::default());
        let outcome = cluster.run_to_quiescence(SimTime::from_us(50), SimTime::from_ms(100));
        outcome != RunLimit::Deadline && cluster.node(0).halted()
    };
    let detect_ns = faulted
        .then(|| {
            collector
                .packet_events()
                .iter()
                .filter(|e| e.stage == Stage::PeerDown && e.at >= crash_from)
                .map(|e| e.at.saturating_sub(crash_from).as_ps() / 1_000)
                .min()
        })
        .flatten();
    let (mut peer_downs, mut peer_ups, mut op_failures) = (0u64, 0u64, 0u64);
    let mut stats = Vec::new();
    for i in 0..cluster.node_count() {
        let st = cluster.node(i).stats();
        peer_downs += st.peer_downs;
        peer_ups += st.peer_ups;
        op_failures += st.op_failures;
        stats.push(format!("{st:?}"));
    }
    // The conservation audit is meant for quiescence; a partition run is
    // stopped mid-flight by the watchdog, so its books stay open.
    let violations = if scenario == "partition" {
        Vec::new()
    } else {
        cluster.conservation_violations()
    };
    let fingerprint = format!(
        "{:?}|{}|{}|{:?}|{:?}|{:?}",
        cluster.now(),
        cluster.fabric_packets(),
        cluster.fabric_retransmits(),
        detect_ns,
        partition,
        stats,
    );
    CrashOutcome {
        completed,
        finished_at: cluster.now(),
        detect_ns,
        peer_downs,
        peer_ups,
        op_failures,
        partition,
        violations,
        fingerprint,
    }
}

/// Count-weighted mean latency of the remote operation classes, in µs —
/// the metric the heartbeat-overhead gate compares.
fn mean_op_latency(cluster: &Cluster) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for i in 0..cluster.node_count() {
        let st = cluster.node(i).stats();
        for s in [&st.remote_writes, &st.remote_reads, &st.atomics] {
            sum += s.mean() * s.count() as f64;
            n += s.count();
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn main() -> ExitCode {
    let mut n_seeds: u64 = 3;
    let mut sweep_seeds: u64 = 10;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                n_seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a number");
            }
            "--sweep-seeds" => {
                sweep_seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sweep-seeds takes a number");
            }
            "--report" => {
                report_path = Some(args.next().expect("--report takes a file path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Fault-free reference per discipline. The committed payload state
    // must be identical across disciplines — SACK vs go-back-N is a
    // wire-efficiency choice, never a semantic one.
    let reference: Vec<RunReport> = MODES.iter().map(|&(_, m)| run(None, m)).collect();
    for ((name, _), r) in MODES.iter().zip(&reference) {
        assert!(r.halted, "fault-free {name} reference did not halt");
        assert!(
            r.violations.is_empty(),
            "fault-free {name} reference broke conservation: {:?}",
            r.violations
        );
    }
    assert_eq!(
        reference[0].outcome, reference[1].outcome,
        "fault-free outcome differs between disciplines"
    );
    println!(
        "reference: completed at {} ({} retransmits)",
        reference[0].finished_at, reference[0].retransmits
    );
    println!();
    println!(
        "{:<11} {:>4} {:>6} {:>7} {:>7} {:>6} {:>5} {:>6} {:>7} {:>12} {:>10}  status",
        "scenario",
        "mode",
        "seed",
        "lost",
        "corrupt",
        "closs",
        "ctrl",
        "retx",
        "rtxB",
        "finished",
        "recovery"
    );

    let mut failures = 0u32;
    let mut metrics = Json::obj();
    metrics.set(
        "reference.finished_us",
        Json::Num(reference[0].finished_at.as_us_f64()),
    );
    for scenario in SCENARIOS {
        for (mi, &(mode_name, mode)) in MODES.iter().enumerate() {
            for s in 0..n_seeds {
                let seed = 0xFA_0001 + 0x1000 * s;
                let r = run(Some(scenario_plan(scenario, seed)), mode);
                let masked = r.halted
                    && r.outcome == reference[mi].outcome
                    && r.violations.is_empty()
                    && !r.dead_links;
                let recovery = r.finished_at.saturating_sub(reference[mi].finished_at);
                for (leaf, v) in [
                    ("frames_lost", r.frames_lost as f64),
                    ("retransmits", r.retransmits as f64),
                    ("retx_bytes", r.retx_bytes as f64),
                    ("resyncs", r.resyncs as f64),
                    ("recovery_us", recovery.as_us_f64()),
                    ("masked", if masked { 1.0 } else { 0.0 }),
                ] {
                    metrics.set(
                        &format!("{scenario}.{mode_name}.seed{s}.{leaf}"),
                        Json::Num(v),
                    );
                }
                println!(
                    "{:<11} {:>4} {:>6x} {:>7} {:>7} {:>6} {:>5} {:>6} {:>7} {:>12} {:>10}  {}",
                    scenario,
                    mode_name,
                    seed,
                    r.frames_lost,
                    r.corrupted,
                    r.credits_lost,
                    r.ctrl_lost + r.ctrl_corrupted,
                    r.retransmits,
                    r.retx_bytes,
                    r.finished_at.to_string(),
                    recovery.to_string(),
                    if masked { "ok" } else { "FAIL" }
                );
                if !masked {
                    failures += 1;
                    if !r.halted {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: cluster wedged");
                    }
                    if r.outcome != reference[mi].outcome {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: outcome diverged");
                    }
                    for v in &r.violations {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: {v}");
                    }
                    if r.dead_links {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: link declared dead");
                    }
                }
            }
        }
    }

    // Recovery-latency vs drop-rate sweep: many seeds per point through a
    // log-scale histogram, per retransmit discipline. This is the E19
    // wire-efficiency comparison: at equal drop rates, SACK must spend
    // fewer retransmitted bytes than go-back-N while keeping recovery
    // latency in the same band.
    println!();
    println!("recovery latency vs drop rate ({sweep_seeds} seeds per point):");
    println!(
        "{:>7} {:>5} {:>7} {:>7} {:>9} {:>10} {:>10} {:>10}",
        "drop%", "mode", "lost", "retx", "rtxB", "p50", "p99", "p999"
    );
    let mut sweep_bytes = vec![vec![0u64; SWEEP_PCTS.len()]; MODES.len()];
    for (mi, &(mode_name, mode)) in MODES.iter().enumerate() {
        for (pi, &pct) in SWEEP_PCTS.iter().enumerate() {
            let mut hist = LogHistogram::new();
            let (mut lost, mut retx, mut retx_bytes) = (0u64, 0u64, 0u64);
            for s in 0..sweep_seeds {
                let plan = FaultPlan::new(0xFA2001 + 0x77 * s).drop(pct as f64 / 100.0);
                let r = run(Some(plan), mode);
                let masked = r.halted
                    && r.outcome == reference[mi].outcome
                    && r.violations.is_empty()
                    && !r.dead_links;
                if !masked {
                    failures += 1;
                    eprintln!("  sweep drop{pct}/{mode_name}/seed{s}: diverged");
                }
                let recovery = r.finished_at.saturating_sub(reference[mi].finished_at);
                // Record in nanoseconds: sub-microsecond recoveries stay
                // resolvable and the histogram's ≤1% relative error is
                // far below run-to-run variance.
                hist.record(recovery.as_ps() / 1_000);
                lost += r.frames_lost;
                retx += r.retransmits;
                retx_bytes += r.retx_bytes;
            }
            sweep_bytes[mi][pi] = retx_bytes;
            let p50_us = hist.quantile(0.50) as f64 / 1_000.0;
            let p99_us = hist.quantile(0.99) as f64 / 1_000.0;
            let p999_us = hist.quantile(0.999) as f64 / 1_000.0;
            for (leaf, v) in [
                ("frames_lost", lost as f64),
                ("retransmits", retx as f64),
                ("retx_bytes", retx_bytes as f64),
                ("recovery_p50_us", p50_us),
                ("recovery_p99_us", p99_us),
                ("recovery_p999_us", p999_us),
            ] {
                metrics.set(&format!("sweep.{mode_name}.drop{pct}.{leaf}"), Json::Num(v));
            }
            println!(
                "{:>7} {:>5} {:>7} {:>7} {:>9} {:>9.3}u {:>9.3}u {:>9.3}u",
                pct, mode_name, lost, retx, retx_bytes, p50_us, p99_us, p999_us
            );
        }
    }
    // The wire-efficiency gate: selective retransmit exists to resend
    // less. At drop rates ≥ 5% it must beat go-back-N on retransmitted
    // bytes, strictly.
    for (pi, &pct) in SWEEP_PCTS.iter().enumerate() {
        if pct < 5 {
            continue;
        }
        let (gbn, sack) = (sweep_bytes[0][pi], sweep_bytes[1][pi]);
        if sack >= gbn {
            failures += 1;
            eprintln!(
                "simfault: at drop{pct}% SACK retransmitted {sack} bytes, \
                 go-back-N {gbn} — selective retransmit is not paying for itself"
            );
        }
    }

    // ---- Crash-stop campaign -------------------------------------------
    //
    // Node crashes, crash+restart, a routed-around switch outage and a
    // disconnecting partition, per retransmit discipline: every scenario
    // must detect the failure (heartbeat conviction), resolve or route
    // around it, and replay bit for bit under the same seed. Detection
    // and recovery latency go through log-scale histograms.
    println!();
    println!("crash-stop campaign ({n_seeds} seeds per scenario x discipline):");
    println!(
        "{:<13} {:>5} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  status",
        "scenario",
        "mode",
        "downs",
        "ups",
        "opfail",
        "det p50",
        "det p99",
        "det p999",
        "rec p50",
        "rec p99",
        "rec p999"
    );
    for scenario in CRASH_SCENARIOS {
        for &(mode_name, mode) in MODES.iter() {
            let reference = (scenario != "partition").then(|| crash_run(scenario, mode, None));
            let ref_finish = reference.as_ref().map(|r| r.finished_at);
            let mut detect = LogHistogram::new();
            let mut recover = LogHistogram::new();
            let (mut downs, mut ups, mut opfails) = (0u64, 0u64, 0u64);
            let mut ok = true;
            for s in 0..n_seeds {
                let seed = 0xC8A5_0001 + 0x915 * s;
                let r = crash_run(scenario, mode, Some(seed));
                downs += r.peer_downs;
                ups += r.peer_ups;
                opfails += r.op_failures;
                let mut bad = Vec::new();
                if !r.completed {
                    bad.push("did not complete".to_string());
                }
                if !r.violations.is_empty() {
                    bad.push(format!("conservation: {:?}", r.violations));
                }
                match r.detect_ns {
                    Some(d) => detect.record(d),
                    None => bad.push("failure never detected".to_string()),
                }
                if let Some(reft) = ref_finish {
                    let rec_ns = r.finished_at.saturating_sub(reft).as_ps() / 1_000;
                    recover.record(rec_ns);
                    metrics.set(
                        &format!("campaign.{scenario}.{mode_name}.seed{s}.recovery_us"),
                        Json::Num(rec_ns as f64 / 1_000.0),
                    );
                }
                match scenario {
                    "crash" if r.op_failures == 0 => {
                        bad.push("no structured op failure on a crashed peer".to_string());
                    }
                    "crashrestart" if r.peer_ups == 0 => {
                        bad.push("restart never rehabilitated the peer".to_string());
                    }
                    "partition" if r.partition.is_empty() => {
                        bad.push("disconnecting cut did not name the partition".to_string());
                    }
                    _ => {}
                }
                metrics.set(
                    &format!("campaign.{scenario}.{mode_name}.seed{s}.detect_us"),
                    Json::Num(r.detect_ns.unwrap_or(0) as f64 / 1_000.0),
                );
                if !bad.is_empty() {
                    failures += 1;
                    ok = false;
                    for b in bad {
                        eprintln!("  campaign {scenario}/{mode_name}/seed{s}: {b}");
                    }
                }
            }
            // Replay gate: the same seeded schedule must reproduce the
            // run bit for bit — memory, counters, verdicts and times.
            let a = crash_run(scenario, mode, Some(0xC8A5_0001));
            let b = crash_run(scenario, mode, Some(0xC8A5_0001));
            if a.fingerprint != b.fingerprint {
                failures += 1;
                ok = false;
                eprintln!("  campaign {scenario}/{mode_name}: seeded replay diverged");
                eprintln!("    first : {}", a.fingerprint);
                eprintln!("    second: {}", b.fingerprint);
            }
            let q = |h: &LogHistogram, p: f64| h.quantile(p) as f64 / 1_000.0;
            for (leaf, v) in [
                ("detect_p50_us", q(&detect, 0.50)),
                ("detect_p99_us", q(&detect, 0.99)),
                ("detect_p999_us", q(&detect, 0.999)),
                ("recovery_p50_us", q(&recover, 0.50)),
                ("recovery_p99_us", q(&recover, 0.99)),
                ("recovery_p999_us", q(&recover, 0.999)),
            ] {
                metrics.set(
                    &format!("campaign.{scenario}.{mode_name}.{leaf}"),
                    Json::Num(v),
                );
            }
            println!(
                "{:<13} {:>5} {:>6} {:>6} {:>6} {:>9.1}u {:>9.1}u {:>9.1}u {:>9.1}u {:>9.1}u \
                 {:>9.1}u  {}",
                scenario,
                mode_name,
                downs,
                ups,
                opfails,
                q(&detect, 0.50),
                q(&detect, 0.99),
                q(&detect, 0.999),
                q(&recover, 0.50),
                q(&recover, 0.99),
                q(&recover, 0.999),
                if ok { "ok" } else { "FAIL" }
            );
        }
    }

    // Heartbeat overhead gate: on the zero-fault reliable ping-pong
    // workload, running the failure detector must cost at most 2% on the
    // mean remote-operation latency.
    let base = {
        let opts = HarnessOptions {
            reliable: true,
            ..HarnessOptions::default()
        };
        let mut c = harness::build_pingpong(&opts);
        assert!(
            harness::run_cluster(&mut c, &opts),
            "baseline pingpong wedged"
        );
        mean_op_latency(&c)
    };
    let with_hb = {
        let opts = HarnessOptions {
            reliable: true,
            heartbeats: true,
            ..HarnessOptions::default()
        };
        let mut c = harness::build_pingpong(&opts);
        assert!(
            harness::run_cluster(&mut c, &opts),
            "heartbeat pingpong wedged"
        );
        mean_op_latency(&c)
    };
    let overhead = (with_hb - base) / base;
    metrics.set(
        "campaign.heartbeat_overhead_pct",
        Json::Num(overhead * 100.0),
    );
    println!();
    println!(
        "heartbeat overhead on zero-fault ping-pong: {:.3}us -> {:.3}us ({:+.2}%)",
        base,
        with_hb,
        overhead * 100.0
    );
    if overhead > 0.02 {
        failures += 1;
        eprintln!(
            "simfault: heartbeat overhead {:.2}% exceeds the 2% budget",
            overhead * 100.0
        );
    }

    if let Some(path) = report_path {
        let mut report = Json::obj();
        report.set("schema", Json::Str(SCHEMA.to_string()));
        report.set("name", Json::Str("simfault".to_string()));
        report.set("nodes", Json::Num(f64::from(NODES)));
        report.set("seeds", Json::Num(n_seeds as f64));
        report.set("sweep_seeds", Json::Num(sweep_seeds as f64));
        report.set("metrics", metrics);
        std::fs::write(&path, report.to_string_pretty()).expect("write report");
        println!();
        println!("wrote {path}");
    }

    println!();
    if failures > 0 {
        eprintln!("simfault: {failures} run(s) diverged");
        ExitCode::FAILURE
    } else {
        println!("simfault: all faulted runs fully masked in both disciplines");
        ExitCode::SUCCESS
    }
}
