//! `simfault` — seeded fault campaigns against the reliable fabric.
//!
//! Runs a fixed cluster workload under a matrix of fault scenarios
//! (frame drops, corruption, a link outage window, credit loss, and a
//! hostile control plane that drops or corrupts acks/nacks/resyncs) ×
//! seeds × retransmit disciplines (go-back-N and selective retransmit),
//! and checks that every faulted run is *fully masked*: same final
//! memory contents and operation counts as the fault-free reference, no
//! dead links, and the quiescence-time conservation invariants intact.
//!
//! A recovery-latency vs drop-rate sweep then runs many seeds per point
//! through a [`tg_sim::LogHistogram`], reporting p50/p99 recovery
//! latency and the wire cost (retransmitted frames and bytes) per
//! discipline — the E19 wire-efficiency comparison. The campaign
//! hard-fails if selective retransmit does not beat go-back-N on
//! retransmitted bytes at drop rates ≥ 5%.
//!
//! Usage: `simfault [--seeds N] [--sweep-seeds N] [--report FILE]`
//! (default 3 matrix seeds, 10 sweep seeds per point). `--report`
//! writes a `tg-report-v1` JSON document with the per-run recovery
//! metrics so the CI perf gate can diff fault-recovery behaviour
//! against a committed baseline — the whole campaign is seeded, so the
//! report is deterministic.

use std::process::ExitCode;

use telegraphos::{
    Action, Cluster, ClusterBuilder, FaultPlan, LinkId, RelParams, RetxMode, Script, SharedPage,
};
use tg_analyze::{Json, SCHEMA};
use tg_sim::{LogHistogram, SimTime};
use tg_wire::trace::Site;
use tg_wire::NodeId;

const NODES: u16 = 3;
const WRITES: u64 = 60;
const MODES: [(&str, RetxMode); 2] = [("gbn", RetxMode::GoBackN), ("sack", RetxMode::Sack)];
const SCENARIOS: [&str; 6] = [
    "drop",
    "corrupt",
    "outage",
    "creditloss",
    "ctrldrop",
    "ctrlcorrupt",
];
const SWEEP_PCTS: [u64; 4] = [1, 5, 15, 30];

/// The workload every run executes: two writer nodes stream writes into a
/// shared page on the third, fence, then read a sample back.
fn script(page: &SharedPage, base: u64) -> Script {
    let mut acts: Vec<Action> = (0..WRITES)
        .map(|i| Action::Write(page.va((base + i % 16) * 8), i + 1))
        .collect();
    acts.push(Action::Fence);
    acts.push(Action::Read(page.va(base * 8)));
    Script::new(acts)
}

fn build(plan: Option<FaultPlan>, mode: RetxMode) -> (Cluster, SharedPage) {
    let mut b = ClusterBuilder::new(NODES).reliable_links(RelParams::with_mode(mode));
    if let Some(p) = plan {
        b = b.with_faults(p);
    }
    let mut cluster = b.build();
    let page = cluster.alloc_shared(2);
    cluster.set_process(0, script(&page, 0));
    cluster.set_process(1, script(&page, 16));
    (cluster, page)
}

/// Everything a campaign compares between a faulted run and the
/// fault-free reference.
#[derive(PartialEq, Eq, Debug)]
struct Outcome {
    memory: Vec<u64>,
    writes: (u64, u64),
    reads: (u64, u64),
    fences: (u64, u64),
}

struct RunReport {
    outcome: Outcome,
    finished_at: SimTime,
    halted: bool,
    retransmits: u64,
    retx_bytes: u64,
    resyncs: u64,
    frames_lost: u64,
    corrupted: u64,
    credits_lost: u64,
    ctrl_lost: u64,
    ctrl_corrupted: u64,
    violations: Vec<String>,
    dead_links: bool,
}

fn run(plan: Option<FaultPlan>, mode: RetxMode) -> RunReport {
    let (mut cluster, page) = build(plan, mode);
    cluster.run();
    let memory: Vec<u64> = (0..32).map(|w| cluster.read_shared(&page, w)).collect();
    let st0 = cluster.node(0).stats();
    let st1 = cluster.node(1).stats();
    let fs = cluster.fault_stats();
    RunReport {
        outcome: Outcome {
            memory,
            writes: (st0.remote_writes.count(), st1.remote_writes.count()),
            reads: (st0.remote_reads.count(), st1.remote_reads.count()),
            fences: (st0.fences.count(), st1.fences.count()),
        },
        finished_at: cluster.now(),
        halted: cluster.all_halted(),
        retransmits: cluster.fabric_retransmits(),
        retx_bytes: cluster.fabric_retx_bytes(),
        resyncs: cluster.fabric_resyncs(),
        frames_lost: fs.as_ref().map_or(0, |s| s.drops + s.outage_drops),
        corrupted: fs.as_ref().map_or(0, |s| s.corrupts),
        credits_lost: fs.as_ref().map_or(0, |s| s.credits_lost),
        ctrl_lost: fs.as_ref().map_or(0, |s| s.ctrl_drops),
        ctrl_corrupted: fs.as_ref().map_or(0, |s| s.ctrl_corrupts),
        violations: cluster.conservation_violations(),
        dead_links: !cluster.link_errors().is_empty(),
    }
}

fn victim_uplink() -> LinkId {
    LinkId::new(Site::Node(NodeId::new(0)), Site::Switch(0))
}

fn scenario_plan(name: &str, seed: u64) -> FaultPlan {
    match name {
        "drop" => FaultPlan::new(seed).drop(0.20),
        "corrupt" => FaultPlan::new(seed).corrupt(0.15),
        "outage" => FaultPlan::new(seed).drop(0.05).outage(
            victim_uplink(),
            SimTime::from_us(5),
            SimTime::from_us(40),
        ),
        "creditloss" => FaultPlan::new(seed).credit_loss(0.5),
        // The hostile control plane: data faults force recovery traffic,
        // then the injector attacks the recovery protocol itself.
        "ctrldrop" => FaultPlan::new(seed).drop(0.10).ctrl_drop(0.25),
        "ctrlcorrupt" => FaultPlan::new(seed)
            .corrupt(0.10)
            .ctrl_corrupt(0.25)
            .credit_loss(0.1),
        other => panic!("unknown scenario {other}"),
    }
}

fn main() -> ExitCode {
    let mut n_seeds: u64 = 3;
    let mut sweep_seeds: u64 = 10;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                n_seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a number");
            }
            "--sweep-seeds" => {
                sweep_seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sweep-seeds takes a number");
            }
            "--report" => {
                report_path = Some(args.next().expect("--report takes a file path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Fault-free reference per discipline. The committed payload state
    // must be identical across disciplines — SACK vs go-back-N is a
    // wire-efficiency choice, never a semantic one.
    let reference: Vec<RunReport> = MODES.iter().map(|&(_, m)| run(None, m)).collect();
    for ((name, _), r) in MODES.iter().zip(&reference) {
        assert!(r.halted, "fault-free {name} reference did not halt");
        assert!(
            r.violations.is_empty(),
            "fault-free {name} reference broke conservation: {:?}",
            r.violations
        );
    }
    assert_eq!(
        reference[0].outcome, reference[1].outcome,
        "fault-free outcome differs between disciplines"
    );
    println!(
        "reference: completed at {} ({} retransmits)",
        reference[0].finished_at, reference[0].retransmits
    );
    println!();
    println!(
        "{:<11} {:>4} {:>6} {:>7} {:>7} {:>6} {:>5} {:>6} {:>7} {:>12} {:>10}  status",
        "scenario",
        "mode",
        "seed",
        "lost",
        "corrupt",
        "closs",
        "ctrl",
        "retx",
        "rtxB",
        "finished",
        "recovery"
    );

    let mut failures = 0u32;
    let mut metrics = Json::obj();
    metrics.set(
        "reference.finished_us",
        Json::Num(reference[0].finished_at.as_us_f64()),
    );
    for scenario in SCENARIOS {
        for (mi, &(mode_name, mode)) in MODES.iter().enumerate() {
            for s in 0..n_seeds {
                let seed = 0xFA_0001 + 0x1000 * s;
                let r = run(Some(scenario_plan(scenario, seed)), mode);
                let masked = r.halted
                    && r.outcome == reference[mi].outcome
                    && r.violations.is_empty()
                    && !r.dead_links;
                let recovery = r.finished_at.saturating_sub(reference[mi].finished_at);
                for (leaf, v) in [
                    ("frames_lost", r.frames_lost as f64),
                    ("retransmits", r.retransmits as f64),
                    ("retx_bytes", r.retx_bytes as f64),
                    ("resyncs", r.resyncs as f64),
                    ("recovery_us", recovery.as_us_f64()),
                    ("masked", if masked { 1.0 } else { 0.0 }),
                ] {
                    metrics.set(
                        &format!("{scenario}.{mode_name}.seed{s}.{leaf}"),
                        Json::Num(v),
                    );
                }
                println!(
                    "{:<11} {:>4} {:>6x} {:>7} {:>7} {:>6} {:>5} {:>6} {:>7} {:>12} {:>10}  {}",
                    scenario,
                    mode_name,
                    seed,
                    r.frames_lost,
                    r.corrupted,
                    r.credits_lost,
                    r.ctrl_lost + r.ctrl_corrupted,
                    r.retransmits,
                    r.retx_bytes,
                    r.finished_at.to_string(),
                    recovery.to_string(),
                    if masked { "ok" } else { "FAIL" }
                );
                if !masked {
                    failures += 1;
                    if !r.halted {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: cluster wedged");
                    }
                    if r.outcome != reference[mi].outcome {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: outcome diverged");
                    }
                    for v in &r.violations {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: {v}");
                    }
                    if r.dead_links {
                        eprintln!("  {scenario}/{mode_name}/{seed:x}: link declared dead");
                    }
                }
            }
        }
    }

    // Recovery-latency vs drop-rate sweep: many seeds per point through a
    // log-scale histogram, per retransmit discipline. This is the E19
    // wire-efficiency comparison: at equal drop rates, SACK must spend
    // fewer retransmitted bytes than go-back-N while keeping recovery
    // latency in the same band.
    println!();
    println!("recovery latency vs drop rate ({sweep_seeds} seeds per point):");
    println!(
        "{:>7} {:>5} {:>7} {:>7} {:>9} {:>10} {:>10}",
        "drop%", "mode", "lost", "retx", "rtxB", "p50", "p99"
    );
    let mut sweep_bytes = vec![vec![0u64; SWEEP_PCTS.len()]; MODES.len()];
    for (mi, &(mode_name, mode)) in MODES.iter().enumerate() {
        for (pi, &pct) in SWEEP_PCTS.iter().enumerate() {
            let mut hist = LogHistogram::new();
            let (mut lost, mut retx, mut retx_bytes) = (0u64, 0u64, 0u64);
            for s in 0..sweep_seeds {
                let plan = FaultPlan::new(0xFA2001 + 0x77 * s).drop(pct as f64 / 100.0);
                let r = run(Some(plan), mode);
                let masked = r.halted
                    && r.outcome == reference[mi].outcome
                    && r.violations.is_empty()
                    && !r.dead_links;
                if !masked {
                    failures += 1;
                    eprintln!("  sweep drop{pct}/{mode_name}/seed{s}: diverged");
                }
                let recovery = r.finished_at.saturating_sub(reference[mi].finished_at);
                // Record in nanoseconds: sub-microsecond recoveries stay
                // resolvable and the histogram's ≤1% relative error is
                // far below run-to-run variance.
                hist.record(recovery.as_ps() / 1_000);
                lost += r.frames_lost;
                retx += r.retransmits;
                retx_bytes += r.retx_bytes;
            }
            sweep_bytes[mi][pi] = retx_bytes;
            let p50_us = hist.quantile(0.50) as f64 / 1_000.0;
            let p99_us = hist.quantile(0.99) as f64 / 1_000.0;
            for (leaf, v) in [
                ("frames_lost", lost as f64),
                ("retransmits", retx as f64),
                ("retx_bytes", retx_bytes as f64),
                ("recovery_p50_us", p50_us),
                ("recovery_p99_us", p99_us),
            ] {
                metrics.set(&format!("sweep.{mode_name}.drop{pct}.{leaf}"), Json::Num(v));
            }
            println!(
                "{:>7} {:>5} {:>7} {:>7} {:>9} {:>9.3}u {:>9.3}u",
                pct, mode_name, lost, retx, retx_bytes, p50_us, p99_us
            );
        }
    }
    // The wire-efficiency gate: selective retransmit exists to resend
    // less. At drop rates ≥ 5% it must beat go-back-N on retransmitted
    // bytes, strictly.
    for (pi, &pct) in SWEEP_PCTS.iter().enumerate() {
        if pct < 5 {
            continue;
        }
        let (gbn, sack) = (sweep_bytes[0][pi], sweep_bytes[1][pi]);
        if sack >= gbn {
            failures += 1;
            eprintln!(
                "simfault: at drop{pct}% SACK retransmitted {sack} bytes, \
                 go-back-N {gbn} — selective retransmit is not paying for itself"
            );
        }
    }

    if let Some(path) = report_path {
        let mut report = Json::obj();
        report.set("schema", Json::Str(SCHEMA.to_string()));
        report.set("name", Json::Str("simfault".to_string()));
        report.set("nodes", Json::Num(f64::from(NODES)));
        report.set("seeds", Json::Num(n_seeds as f64));
        report.set("sweep_seeds", Json::Num(sweep_seeds as f64));
        report.set("metrics", metrics);
        std::fs::write(&path, report.to_string_pretty()).expect("write report");
        println!();
        println!("wrote {path}");
    }

    println!();
    if failures > 0 {
        eprintln!("simfault: {failures} run(s) diverged");
        ExitCode::FAILURE
    } else {
        println!("simfault: all faulted runs fully masked in both disciplines");
        ExitCode::SUCCESS
    }
}
