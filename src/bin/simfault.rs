//! `simfault` — seeded fault campaigns against the reliable fabric.
//!
//! Runs a fixed cluster workload under a matrix of fault scenarios
//! (frame drops, corruption, a link outage window, credit loss) × seeds,
//! each with
//! link-level reliability enabled, and checks that every faulted run is
//! *fully masked*: same final memory contents and operation counts as
//! the fault-free reference, no dead links, and the quiescence-time
//! conservation invariants intact. Prints a recovery report (recovery
//! latency, retransmissions, resyncs per run) plus a recovery-latency
//! vs drop-rate sweep, and exits nonzero if any run diverges — the CI
//! fault-matrix smoke test.
//!
//! Usage: `simfault [--seeds N] [--report FILE]` (default 3 seeds per
//! scenario). `--report` writes a `tg-report-v1` JSON document with the
//! per-run recovery metrics (retransmits, resyncs, frames lost, recovery
//! latency) so the CI perf gate can diff fault-recovery behaviour against
//! a committed baseline — the whole campaign is seeded, so the report is
//! deterministic.

use std::process::ExitCode;

use telegraphos::{
    Action, Cluster, ClusterBuilder, FaultPlan, LinkId, RelParams, Script, SharedPage,
};
use tg_analyze::{Json, SCHEMA};
use tg_sim::SimTime;
use tg_wire::trace::Site;
use tg_wire::NodeId;

const NODES: u16 = 3;
const WRITES: u64 = 60;

/// The workload every run executes: two writer nodes stream writes into a
/// shared page on the third, fence, then read a sample back.
fn script(page: &SharedPage, base: u64) -> Script {
    let mut acts: Vec<Action> = (0..WRITES)
        .map(|i| Action::Write(page.va((base + i % 16) * 8), i + 1))
        .collect();
    acts.push(Action::Fence);
    acts.push(Action::Read(page.va(base * 8)));
    Script::new(acts)
}

fn build(plan: Option<FaultPlan>) -> (Cluster, SharedPage) {
    let mut b = ClusterBuilder::new(NODES).reliable_links(RelParams::default());
    if let Some(p) = plan {
        b = b.with_faults(p);
    }
    let mut cluster = b.build();
    let page = cluster.alloc_shared(2);
    cluster.set_process(0, script(&page, 0));
    cluster.set_process(1, script(&page, 16));
    (cluster, page)
}

/// Everything a campaign compares between a faulted run and the
/// fault-free reference.
#[derive(PartialEq, Eq, Debug)]
struct Outcome {
    memory: Vec<u64>,
    writes: (u64, u64),
    reads: (u64, u64),
    fences: (u64, u64),
}

struct RunReport {
    outcome: Outcome,
    finished_at: SimTime,
    halted: bool,
    retransmits: u64,
    resyncs: u64,
    frames_lost: u64,
    corrupted: u64,
    credits_lost: u64,
    violations: Vec<String>,
    dead_links: bool,
}

fn run(plan: Option<FaultPlan>) -> RunReport {
    let (mut cluster, page) = build(plan);
    cluster.run();
    let memory: Vec<u64> = (0..32).map(|w| cluster.read_shared(&page, w)).collect();
    let st0 = cluster.node(0).stats();
    let st1 = cluster.node(1).stats();
    let fs = cluster.fault_stats();
    RunReport {
        outcome: Outcome {
            memory,
            writes: (st0.remote_writes.count(), st1.remote_writes.count()),
            reads: (st0.remote_reads.count(), st1.remote_reads.count()),
            fences: (st0.fences.count(), st1.fences.count()),
        },
        finished_at: cluster.now(),
        halted: cluster.all_halted(),
        retransmits: cluster.fabric_retransmits(),
        resyncs: cluster.fabric_resyncs(),
        frames_lost: fs.as_ref().map_or(0, |s| s.drops + s.outage_drops),
        corrupted: fs.as_ref().map_or(0, |s| s.corrupts),
        credits_lost: fs.as_ref().map_or(0, |s| s.credits_lost),
        violations: cluster.conservation_violations(),
        dead_links: !cluster.link_errors().is_empty(),
    }
}

fn victim_uplink() -> LinkId {
    LinkId::new(Site::Node(NodeId::new(0)), Site::Switch(0))
}

fn scenario_plan(name: &str, seed: u64) -> FaultPlan {
    match name {
        "drop" => FaultPlan::new(seed).drop(0.20),
        "corrupt" => FaultPlan::new(seed).corrupt(0.15),
        "outage" => FaultPlan::new(seed).drop(0.05).outage(
            victim_uplink(),
            SimTime::from_us(5),
            SimTime::from_us(40),
        ),
        "creditloss" => FaultPlan::new(seed).credit_loss(0.5),
        other => panic!("unknown scenario {other}"),
    }
}

fn main() -> ExitCode {
    let mut n_seeds: u64 = 3;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                n_seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a number");
            }
            "--report" => {
                report_path = Some(args.next().expect("--report takes a file path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let reference = run(None);
    assert!(reference.halted, "fault-free reference did not halt");
    assert!(
        reference.violations.is_empty(),
        "fault-free reference broke conservation: {:?}",
        reference.violations
    );
    println!(
        "reference: completed at {} ({} retransmits)",
        reference.finished_at, reference.retransmits
    );
    println!();
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>6} {:>6} {:>6} {:>12} {:>10}  status",
        "scenario", "seed", "lost", "corrupt", "closs", "retx", "resync", "finished", "recovery"
    );

    let mut failures = 0u32;
    let mut metrics = Json::obj();
    metrics.set(
        "reference.finished_us",
        Json::Num(reference.finished_at.as_us_f64()),
    );
    for scenario in ["drop", "corrupt", "outage", "creditloss"] {
        for s in 0..n_seeds {
            let seed = 0xFA_0001 + 0x1000 * s;
            let r = run(Some(scenario_plan(scenario, seed)));
            let masked = r.halted
                && r.outcome == reference.outcome
                && r.violations.is_empty()
                && !r.dead_links;
            let recovery = r.finished_at.saturating_sub(reference.finished_at);
            for (leaf, v) in [
                ("frames_lost", r.frames_lost as f64),
                ("retransmits", r.retransmits as f64),
                ("resyncs", r.resyncs as f64),
                ("recovery_us", recovery.as_us_f64()),
                ("masked", if masked { 1.0 } else { 0.0 }),
            ] {
                metrics.set(&format!("{scenario}.seed{s}.{leaf}"), Json::Num(v));
            }
            println!(
                "{:<10} {:>6x} {:>8} {:>8} {:>6} {:>6} {:>6} {:>12} {:>10}  {}",
                scenario,
                seed,
                r.frames_lost,
                r.corrupted,
                r.credits_lost,
                r.retransmits,
                r.resyncs,
                r.finished_at.to_string(),
                recovery.to_string(),
                if masked { "ok" } else { "FAIL" }
            );
            if !masked {
                failures += 1;
                if !r.halted {
                    eprintln!("  {scenario}/{seed:x}: cluster wedged");
                }
                if r.outcome != reference.outcome {
                    eprintln!("  {scenario}/{seed:x}: outcome diverged from reference");
                }
                for v in &r.violations {
                    eprintln!("  {scenario}/{seed:x}: {v}");
                }
                if r.dead_links {
                    eprintln!("  {scenario}/{seed:x}: link declared dead");
                }
            }
        }
    }

    println!();
    println!("recovery latency vs drop rate (seed 0xFA2001):");
    println!(
        "{:>7} {:>8} {:>8} {:>12} {:>10}",
        "drop%", "lost", "retx", "finished", "recovery"
    );
    for pct in [5u64, 10, 20, 30, 40] {
        let plan = FaultPlan::new(0xFA2001).drop(pct as f64 / 100.0);
        let r = run(Some(plan));
        let masked = r.halted && r.outcome == reference.outcome && r.violations.is_empty();
        let recovery = r.finished_at.saturating_sub(reference.finished_at);
        for (leaf, v) in [
            ("frames_lost", r.frames_lost as f64),
            ("retransmits", r.retransmits as f64),
            ("recovery_us", recovery.as_us_f64()),
        ] {
            metrics.set(&format!("sweep.drop{pct}.{leaf}"), Json::Num(v));
        }
        println!(
            "{:>7} {:>8} {:>8} {:>12} {:>10}{}",
            pct,
            r.frames_lost,
            r.retransmits,
            r.finished_at.to_string(),
            recovery.to_string(),
            if masked { "" } else { "  FAIL" }
        );
        if !masked {
            failures += 1;
        }
    }

    if let Some(path) = report_path {
        let mut report = Json::obj();
        report.set("schema", Json::Str(SCHEMA.to_string()));
        report.set("name", Json::Str("simfault".to_string()));
        report.set("nodes", Json::Num(f64::from(NODES)));
        report.set("seeds", Json::Num(n_seeds as f64));
        report.set("metrics", metrics);
        std::fs::write(&path, report.to_string_pretty()).expect("write report");
        println!();
        println!("wrote {path}");
    }

    println!();
    if failures > 0 {
        eprintln!("simfault: {failures} run(s) diverged");
        ExitCode::FAILURE
    } else {
        println!("simfault: all faulted runs fully masked");
        ExitCode::SUCCESS
    }
}
