//! `simkv` — the replicated KV service under the crash campaign (E21).
//!
//! Drives the `tg-kv` service — open-loop heavy-tailed client load over
//! posted-write mailboxes, eager-update replication fenced before every
//! ack, directory failover on remote atomics — through a matrix of
//! fault scenarios × retransmit disciplines × seeds:
//!
//! - `baseline`  — healthy fabric (the control: no failovers allowed);
//! - `crash`     — a replica crash-stops mid-run, permanently;
//! - `crashrestart` — the replica restarts later and must be harmless
//!   (its leftovers refused by the directory check, never re-promoted);
//! - `switchout` — the replica's switch goes dark and recovers: a
//!   transient partition the ring routes around;
//! - `ctrl`      — a hostile control plane (acks/nacks/resyncs dropped
//!   and corrupted) degrades the transport under the service.
//!
//! Every run is audited against the service contract (`tg_kv::audit`):
//! every request terminally resolved, **zero lost acknowledged writes**
//! (the ack-after-fence durability invariant, checked against every
//! replica the fault plan never silenced), **zero duplicate applies**
//! (idempotent retries), final-state attribution, and get sanity. Each
//! configuration then runs a second time and must reproduce the same
//! observable-history fingerprint bit for bit. Committed-request
//! latency (resolved − scheduled arrival) goes through a log-histogram
//! to p50/p99/p999, and the campaign hard-fails if p999 is unbounded
//! by `P999_LIMIT_US` — the tail is the whole point of request-level
//! robustness.
//!
//! Usage: `simkv [--seeds N] [--requests N] [--report FILE]`. The
//! report is a `tg-report-v2` document; the whole campaign is seeded
//! and deterministic, so CI diffs it exactly against a committed
//! baseline.

use std::process::ExitCode;

use telegraphos::RetxMode;
use telegraphos_suite::harness::{self, HarnessOptions};
use tg_analyze::{Json, SCHEMA};
use tg_kv::{audit, drive, AuditReport, KvConfig};
use tg_sim::{LogHistogram, RunLimit, SimTime};
use tg_wire::NodeId;

const MODES: [(&str, RetxMode); 2] = [("gbn", RetxMode::GoBackN), ("sack", RetxMode::Sack)];
const SCENARIOS: [&str; 5] = ["baseline", "crash", "crashrestart", "switchout", "ctrl"];
/// Hard ceiling on committed-request p999 latency, µs.
const P999_LIMIT_US: f64 = 50_000.0;
/// The replica node every crash-stop scenario targets.
const VICTIM: u16 = 1;

/// Fault options for a scenario. The victim is always replica node 1;
/// node 0 (the directory) is never faulted — the service's split-brain
/// guard depends on the directory being a reliable arbiter, which is a
/// documented deployment assumption, not an accident.
fn scenario_opts(scenario: &str, mode: RetxMode, seed: u64) -> HarnessOptions {
    let mut o = HarnessOptions {
        reliable: true,
        heartbeats: true,
        mode,
        fault_seed: 0xFA_4B56 ^ (seed << 8),
        ..HarnessOptions::default()
    };
    match scenario {
        "baseline" => {}
        "crash" => o.crash = Some((VICTIM, 400)),
        "crashrestart" => {
            o.crash = Some((VICTIM, 400));
            o.restart_us = Some(3_000);
        }
        "switchout" => o.switch_out = Some((VICTIM, 400, 1_500)),
        "ctrl" => {
            o.ctrl_drop = 0.15;
            o.ctrl_corrupt = 0.15;
        }
        other => panic!("unknown scenario {other}"),
    }
    o
}

/// Replica nodes the scenario's fault plan silences at some point —
/// exempt from the durability gate (they miss eager updates while dark;
/// the client's sticky suspicion guarantees they are never re-promoted,
/// so their staleness is unobservable through the service interface).
fn silenced(scenario: &str) -> Vec<NodeId> {
    match scenario {
        "crash" | "crashrestart" | "switchout" => vec![NodeId::new(VICTIM)],
        _ => Vec::new(),
    }
}

struct KvRun {
    report: AuditReport,
    finished: bool,
}

fn run_once(scenario: &str, mode: RetxMode, seed: u64, requests: u32) -> KvRun {
    let cfg = KvConfig {
        requests_per_client: requests,
        seed: 0x4B56_0000 ^ seed,
        ..KvConfig::default()
    };
    let opts = scenario_opts(scenario, mode, seed);
    let (mut cluster, handles) = harness::build_kv(&opts, &cfg);
    let outcome = drive(
        &mut cluster,
        &handles,
        SimTime::from_us(50),
        SimTime::from_ms(200),
    );
    let report = audit(&cluster, &handles, &silenced(scenario));
    KvRun {
        report,
        finished: outcome != RunLimit::Deadline,
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut n_seeds: u64 = 3;
    let mut requests: u32 = 16;
    let mut report_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                n_seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a count");
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests takes a count");
            }
            "--report" => {
                report_path = Some(args.next().expect("--report takes a file path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut metrics = Json::obj();
    let mut failures = 0u32;
    println!("replicated KV service under the crash campaign");
    println!(
        "{:<13} {:>5} {:>6} {:>5} {:>5} {:>5} {:>6} {:>5} {:>9} {:>9} {:>9}  gate",
        "scenario", "mode", "commit", "busy", "fail", "fo", "fresh", "dedup", "p50", "p99", "p999"
    );
    for scenario in SCENARIOS {
        for (mode_name, mode) in MODES {
            let mut ok = true;
            let mut lat = LogHistogram::new();
            let mut committed = 0u64;
            let mut busy = 0u64;
            let mut failed = 0u64;
            let mut failovers = 0u64;
            let mut fresh = 0u64;
            let mut dedup = 0u64;
            let mut timeouts = 0u64;
            for seed in 0..n_seeds {
                let r = run_once(scenario, mode, seed, requests);
                if !r.finished {
                    ok = false;
                    eprintln!("  {scenario}/{mode_name}/seed{seed}: run never finished");
                }
                for v in &r.report.violations {
                    ok = false;
                    eprintln!("  {scenario}/{mode_name}/seed{seed}: {v}");
                }
                committed += r.report.committed_puts + r.report.committed_gets;
                busy += r.report.rejected_busy;
                failed += r.report.failed_unreachable;
                failovers += r.report.failovers;
                fresh += r.report.fresh_applies;
                dedup += r.report.dedup_hits;
                timeouts += r.report.timeouts;
                for &ns in &r.report.latencies_ns {
                    lat.record(ns.max(1));
                }
                // Byte-determinism gate: the same configuration must
                // reproduce the same observable history.
                let again = run_once(scenario, mode, seed, requests);
                if again.report.fingerprint != r.report.fingerprint {
                    ok = false;
                    eprintln!("  {scenario}/{mode_name}/seed{seed}: seeded replay diverged");
                }
            }
            // Scenario-shape gates.
            if scenario == "baseline" && (failovers > 0 || failed > 0) {
                ok = false;
                eprintln!(
                    "  {scenario}/{mode_name}: healthy fabric saw {failovers} failover(s), \
                     {failed} unreachable"
                );
            }
            if matches!(scenario, "crash" | "crashrestart" | "switchout") && failovers == 0 {
                ok = false;
                eprintln!("  {scenario}/{mode_name}: the dead replica's ranges never moved");
            }
            if committed == 0 {
                ok = false;
                eprintln!("  {scenario}/{mode_name}: nothing ever committed");
            }
            let q = |p: f64| lat.quantile(p) as f64 / 1_000.0;
            let (p50, p99, p999) = (q(0.50), q(0.99), q(0.999));
            if p999 > P999_LIMIT_US {
                ok = false;
                eprintln!(
                    "  {scenario}/{mode_name}: p999 {p999:.1}us breaches the \
                     {P999_LIMIT_US:.0}us ceiling"
                );
            }
            for (leaf, v) in [
                ("committed", committed as f64),
                ("rejected_busy", busy as f64),
                ("failed_unreachable", failed as f64),
                ("failovers", failovers as f64),
                ("fresh_applies", fresh as f64),
                ("dedup_hits", dedup as f64),
                ("timeouts", timeouts as f64),
                ("latency_p50_us", p50),
                ("latency_p99_us", p99),
                ("latency_p999_us", p999),
            ] {
                metrics.set(&format!("kv.{scenario}.{mode_name}.{leaf}"), Json::Num(v));
            }
            if !ok {
                failures += 1;
            }
            println!(
                "{:<13} {:>5} {:>6} {:>5} {:>5} {:>5} {:>6} {:>5} {:>8.1}u {:>8.1}u {:>8.1}u  {}",
                scenario,
                mode_name,
                committed,
                busy,
                failed,
                failovers,
                fresh,
                dedup,
                p50,
                p99,
                p999,
                if ok { "ok" } else { "FAIL" }
            );
        }
    }

    if let Some(path) = report_path {
        let mut report = Json::obj();
        report.set("schema", Json::Str(SCHEMA.to_string()));
        report.set("name", Json::Str("simkv".to_string()));
        report.set("seeds", Json::Num(n_seeds as f64));
        report.set("requests_per_client", Json::Num(f64::from(requests)));
        report.set("metrics", metrics);
        std::fs::write(&path, report.to_string_pretty()).expect("write report");
        println!();
        println!("wrote {path}");
    }

    println!();
    if failures > 0 {
        eprintln!("simkv: {failures} scenario/mode cell(s) violated the service contract");
        ExitCode::FAILURE
    } else {
        println!("simkv: service contract held in every scenario, both disciplines");
        ExitCode::SUCCESS
    }
}
