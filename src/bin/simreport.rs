//! `simreport` — critical-path latency attribution, congestion
//! observatory, and the perf-regression gate CLI.
//!
//! ```text
//! simreport run [stencil16|pingpong] [--nodes N] [--interval-us U]
//!               [--out FILE] [--perfetto FILE] [--top K]
//!               [--reliable] [--drop P] [--corrupt P] [--fault-seed S]
//!               [--quiet]
//! simreport gate --baseline FILE --current FILE
//!               [--default-tol R] [--tol PATTERN=R]... [--skip PATTERN]...
//! simreport degrade --in FILE --out FILE --metric PATTERN --factor F
//! ```
//!
//! * `run` executes a harness workload with tracing and metric sampling
//!   enabled, prints the per-hop critical-path attribution (p50/p99
//!   exemplars whose segments sum *exactly* to their measured latency),
//!   names the hottest links, and writes a `tg-report-v2` `report.json`.
//!   `--perfetto FILE` additionally exports a Chrome trace with the
//!   congestion time series as counter tracks.
//! * `gate` diffs a current report against a committed baseline with
//!   direction-aware per-metric tolerances and exits non-zero on any
//!   regression — the CI perf gate.
//! * `degrade` injects a synthetic regression into a report (scales
//!   matching metrics), so CI can prove the gate actually fires.

use std::collections::HashMap;
use std::process::ExitCode;

use telegraphos::observe::{chrome_events, chrome_trace_json, counter_track_events};
use telegraphos::Cluster;
use telegraphos_suite::harness::{self, HarnessOptions, StencilCheck};
use tg_analyze::{
    attribute_ops, exemplar_at, gate_reports, hottest_links, link_usage, scale_matching, Json,
    LinkUsage, OpAttribution, SegClass, Tolerances, SCHEMA,
};
use tg_sim::{LogHistogram, MetricsRegistry, SimTime};

struct RunOptions {
    workload: String,
    nodes: u16,
    interval_us: u64,
    out: String,
    perfetto: Option<String>,
    top: usize,
    reliable: bool,
    drop: f64,
    corrupt: f64,
    fault_seed: u64,
    quiet: bool,
}

fn parse_run(args: &mut std::env::Args) -> Result<RunOptions, String> {
    let mut opts = RunOptions {
        workload: "stencil16".to_string(),
        nodes: 0, // 0 = workload default
        interval_us: 1,
        out: "report.json".to_string(),
        perfetto: None,
        top: 5,
        reliable: false,
        drop: 0.0,
        corrupt: 0.0,
        fault_seed: 0xFA_0001,
        quiet: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "stencil16" | "pingpong" => opts.workload = arg,
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a value")?;
                opts.nodes = v.parse().map_err(|_| format!("bad --nodes {v}"))?;
            }
            "--interval-us" => {
                let v = args.next().ok_or("--interval-us needs a value")?;
                opts.interval_us = v.parse().map_err(|_| format!("bad --interval-us {v}"))?;
            }
            "--out" => opts.out = args.next().ok_or("--out needs a value")?,
            "--perfetto" => opts.perfetto = Some(args.next().ok_or("--perfetto needs a value")?),
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                opts.top = v.parse().map_err(|_| format!("bad --top {v}"))?;
            }
            "--reliable" => opts.reliable = true,
            "--drop" => {
                let v = args.next().ok_or("--drop needs a value")?;
                opts.drop = v.parse().map_err(|_| format!("bad --drop {v}"))?;
            }
            "--corrupt" => {
                let v = args.next().ok_or("--corrupt needs a value")?;
                opts.corrupt = v.parse().map_err(|_| format!("bad --corrupt {v}"))?;
            }
            "--fault-seed" => {
                let v = args.next().ok_or("--fault-seed needs a value")?;
                opts.fault_seed = v.parse().map_err(|_| format!("bad --fault-seed {v}"))?;
            }
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown run argument {other}")),
        }
    }
    if opts.drop > 0.0 || opts.corrupt > 0.0 {
        opts.reliable = true;
    }
    if opts.nodes == 0 {
        opts.nodes = if opts.workload == "stencil16" { 16 } else { 4 };
    }
    if opts.nodes < 2 {
        return Err("need at least 2 nodes".to_string());
    }
    Ok(opts)
}

/// Latency aggregate of one op kind.
struct KindStats {
    kind: &'static str,
    attribs: Vec<OpAttribution>,
    hist: LogHistogram,
}

fn kind_stats(attribs: Vec<OpAttribution>) -> Vec<KindStats> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut by_kind: HashMap<&'static str, Vec<OpAttribution>> = HashMap::new();
    for a in attribs {
        let kind = a.op.kind.label();
        if !by_kind.contains_key(kind) {
            order.push(kind);
        }
        by_kind.entry(kind).or_default().push(a);
    }
    order
        .into_iter()
        .map(|kind| {
            let attribs = by_kind.remove(kind).expect("indexed");
            let mut hist = LogHistogram::new();
            for a in &attribs {
                hist.record(a.latency().as_ns());
            }
            KindStats {
                kind,
                attribs,
                hist,
            }
        })
        .collect()
}

fn exemplar_json(a: &OpAttribution) -> Json {
    let mut e = Json::obj();
    e.set("latency_ns", Json::Num(a.latency().as_ns() as f64));
    e.set(
        "segments",
        Json::Arr(
            a.segments
                .iter()
                .filter(|s| !s.dur.is_zero())
                .map(|s| {
                    let mut seg = Json::obj();
                    seg.set("name", Json::Str(s.hop_label()));
                    seg.set("ns", Json::Num(s.dur.as_ns() as f64));
                    seg
                })
                .collect(),
        ),
    );
    e
}

fn link_json(u: &LinkUsage) -> Json {
    let mut l = Json::obj();
    l.set("link", Json::Str(u.name.clone()));
    l.set("mean_utilization", Json::Num(u.mean_utilization));
    l.set("peak_utilization", Json::Num(u.peak_utilization));
    l.set("peak_fifo_depth", Json::Num(u.peak_fifo_depth));
    l.set("fifo_high_water", Json::Num(u.fifo_high_water));
    l.set("stall_us", Json::Num(u.stall_us));
    l.set("tx_packets", Json::Num(u.tx_packets as f64));
    l.set("tx_bytes", Json::Num(u.tx_bytes as f64));
    l.set("retransmits", Json::Num(u.retransmits as f64));
    l.set("rx_discards", Json::Num(u.rx_discards as f64));
    l
}

fn print_exemplar(tag: &str, kind: &str, a: &OpAttribution) {
    let mut sum = SimTime::ZERO;
    println!(
        "  {tag} {kind} exemplar ({:.3} us):",
        a.latency().as_us_f64()
    );
    for s in &a.segments {
        if s.dur.is_zero() {
            continue;
        }
        sum += s.dur;
        println!("    {:<32} {:>9.3} us", s.hop_label(), s.dur.as_us_f64());
    }
    // The telescoping invariant, surfaced where a reader can see it.
    let exact = if sum == a.latency() {
        "exact"
    } else {
        "MISMATCH"
    };
    println!("    {:<32} {:>9.3} us ({exact})", "sum", sum.as_us_f64());
}

fn cmd_run(args: &mut std::env::Args) -> Result<ExitCode, String> {
    let opts = parse_run(args)?;
    let hopts = HarnessOptions {
        nodes: opts.nodes,
        reliable: opts.reliable,
        drop: opts.drop,
        corrupt: opts.corrupt,
        fault_seed: opts.fault_seed,
        ..HarnessOptions::default()
    };
    let (mut cluster, stencil_check): (Cluster, Option<StencilCheck>) = match opts.workload.as_str()
    {
        "pingpong" => (harness::build_pingpong(&hopts), None),
        _ => {
            let (c, check) = harness::build_stencil(&hopts, 8, 12);
            (c, Some(check))
        }
    };
    let collector = cluster.enable_tracing();
    let mut metrics = MetricsRegistry::new();
    cluster.run_sampled(SimTime::from_us(opts.interval_us), &mut metrics);
    if !cluster.all_halted() {
        return Err("workload deadlocked".to_string());
    }
    if let Some(check) = &stencil_check {
        harness::verify_stencil(&cluster, check)?;
    }

    let ops = collector.op_events();
    let packets = collector.packet_events();
    let attribs = attribute_ops(&ops, &packets);
    for a in &attribs {
        if a.total() != a.latency() {
            return Err(format!(
                "attribution for {} on node{} sums to {} but the op took {}",
                a.op.kind,
                a.op.node.raw(),
                a.total(),
                a.latency()
            ));
        }
    }
    let kinds = kind_stats(attribs);
    let usage = link_usage(&metrics);
    let hottest = hottest_links(&usage, opts.top);

    // ---- report.json ------------------------------------------------
    let mut report = Json::obj();
    report.set("schema", Json::Str(SCHEMA.to_string()));
    report.set("name", Json::Str(opts.workload.clone()));
    report.set("nodes", Json::Num(f64::from(opts.nodes)));
    report.set("sim_time_us", Json::Num(cluster.now().as_us_f64()));

    let mut latency = Json::obj();
    let mut attribution = Json::obj();
    let mut exemplars = Json::obj();
    for k in &kinds {
        let mut l = Json::obj();
        l.set("count", Json::Num(k.hist.count() as f64));
        l.set("mean_ns", Json::Num(k.hist.mean()));
        l.set("p50_ns", Json::Num(k.hist.quantile(0.5) as f64));
        l.set("p99_ns", Json::Num(k.hist.quantile(0.99) as f64));
        l.set("p999_ns", Json::Num(k.hist.quantile(0.999) as f64));
        latency.set(k.kind, l);

        let mut cl = Json::obj();
        for &class in &SegClass::ALL {
            let total = k
                .attribs
                .iter()
                .flat_map(|a| &a.segments)
                .filter(|s| s.class == class)
                .fold(SimTime::ZERO, |acc, s| acc + s.dur);
            cl.set(
                &format!("{}_us", class.label()),
                Json::Num(total.as_us_f64()),
            );
        }
        attribution.set(k.kind, cl);

        let mut ex = Json::obj();
        if let Some(a) = exemplar_at(&k.attribs, 0.5) {
            ex.set("p50", exemplar_json(a));
        }
        if let Some(a) = exemplar_at(&k.attribs, 0.99) {
            ex.set("p99", exemplar_json(a));
        }
        exemplars.set(k.kind, ex);
    }
    report.set("latency", latency);
    report.set("attribution", attribution);
    report.set("exemplars", exemplars);
    report.set(
        "hottest_links",
        Json::Arr(hottest.iter().map(link_json).collect()),
    );
    let mut counters = Json::obj();
    for (name, value) in metrics.counters() {
        counters.set(name, Json::Num(value as f64));
    }
    report.set("metrics", counters);
    std::fs::write(&opts.out, report.to_string_pretty())
        .map_err(|e| format!("write {}: {e}", opts.out))?;

    // ---- Perfetto export with counter tracks ------------------------
    if let Some(path) = &opts.perfetto {
        let mut events = chrome_events(&ops, &packets);
        events.extend(counter_track_events(&metrics));
        std::fs::write(path, chrome_trace_json(&events))
            .map_err(|e| format!("write {path}: {e}"))?;
    }

    // ---- console report ---------------------------------------------
    if !opts.quiet {
        println!(
            "{}: {} nodes, {} traced ops, {} packet events, sim time {:.1} us -> {}",
            opts.workload,
            opts.nodes,
            kinds.iter().map(|k| k.hist.count()).sum::<u64>(),
            packets.len(),
            cluster.now().as_us_f64(),
            opts.out
        );
        println!("latency (us): kind count p50 p99 p999");
        for k in &kinds {
            println!(
                "  {:<14} x{:<5} {:>8.3} {:>8.3} {:>8.3}",
                k.kind,
                k.hist.count(),
                k.hist.quantile(0.5) as f64 / 1000.0,
                k.hist.quantile(0.99) as f64 / 1000.0,
                k.hist.quantile(0.999) as f64 / 1000.0,
            );
        }
        println!("critical-path attribution:");
        for k in &kinds {
            if let Some(a) = exemplar_at(&k.attribs, 0.5) {
                print_exemplar("p50", k.kind, a);
            }
            if let Some(a) = exemplar_at(&k.attribs, 0.99) {
                print_exemplar("p99", k.kind, a);
            }
        }
        println!("hottest links (top {}):", opts.top);
        for (i, u) in hottest.iter().enumerate() {
            println!(
                "  {}. {:<22} util {:.3} (peak {:.3})  stall {:>8.1} us  fifo hw {:>3}  {} pkts",
                i + 1,
                u.name,
                u.mean_utilization,
                u.peak_utilization,
                u.stall_us,
                u.fifo_high_water,
                u.tx_packets
            );
        }
        if let Some(top) = hottest.first() {
            println!("saturated link: {}", top.name);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_gate(args: &mut std::env::Args) -> Result<ExitCode, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tol = Tolerances::exact();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a value")?),
            "--current" => current = Some(args.next().ok_or("--current needs a value")?),
            "--default-tol" => {
                let v = args.next().ok_or("--default-tol needs a value")?;
                tol.default_rel = v.parse().map_err(|_| format!("bad --default-tol {v}"))?;
            }
            "--tol" => {
                let v = args.next().ok_or("--tol needs PATTERN=REL")?;
                let (pat, rel) = v.split_once('=').ok_or(format!("bad --tol {v}"))?;
                let rel: f64 = rel.parse().map_err(|_| format!("bad --tol {v}"))?;
                tol.per_metric.push((pat.to_string(), rel));
            }
            "--skip" => tol.skip.push(args.next().ok_or("--skip needs a value")?),
            other => return Err(format!("unknown gate argument {other}")),
        }
    }
    let baseline = baseline.ok_or("gate needs --baseline")?;
    let current = current.ok_or("gate needs --current")?;
    let read = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        // v1 baselines stay gateable: they are a strict field subset of
        // v2, and current-only metrics are informational, not failures.
        if let Some(tag) = doc.get("schema").and_then(|s| s.as_str()) {
            if !tg_analyze::schema_accepted(tag) {
                return Err(format!("{path}: unsupported report schema {tag:?}"));
            }
        }
        Ok(doc)
    };
    let result = gate_reports(&read(&baseline)?, &read(&current)?, &tol);
    for f in &result.failures {
        eprintln!("gate: REGRESSION {f}");
    }
    if !result.new_metrics.is_empty() {
        println!(
            "gate: note: {} new metric(s) absent from the baseline (refresh it to gate them)",
            result.new_metrics.len()
        );
    }
    if result.passed() {
        println!(
            "gate: ok ({} metrics within tolerance, {baseline} vs {current})",
            result.checked
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "gate: FAILED ({} of {} metrics regressed)",
            result.failures.len(),
            result.checked
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_degrade(args: &mut std::env::Args) -> Result<ExitCode, String> {
    let mut input = None;
    let mut output = None;
    let mut metric = None;
    let mut factor = 0.9f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--in" => input = Some(args.next().ok_or("--in needs a value")?),
            "--out" => output = Some(args.next().ok_or("--out needs a value")?),
            "--metric" => metric = Some(args.next().ok_or("--metric needs a value")?),
            "--factor" => {
                let v = args.next().ok_or("--factor needs a value")?;
                factor = v.parse().map_err(|_| format!("bad --factor {v}"))?;
            }
            other => return Err(format!("unknown degrade argument {other}")),
        }
    }
    let input = input.ok_or("degrade needs --in")?;
    let output = output.ok_or("degrade needs --out")?;
    let metric = metric.ok_or("degrade needs --metric")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("read {input}: {e}"))?;
    let mut doc = Json::parse(&text).map_err(|e| format!("{input}: {e}"))?;
    let changed = scale_matching(&mut doc, &metric, factor);
    if changed == 0 {
        return Err(format!("no metric matching {metric:?} in {input}"));
    }
    std::fs::write(&output, doc.to_string_pretty()).map_err(|e| format!("write {output}: {e}"))?;
    println!("degrade: scaled {changed} metric(s) matching {metric:?} by {factor} -> {output}");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let cmd = args.next().unwrap_or_else(|| "run".to_string());
    let result = match cmd.as_str() {
        "run" => cmd_run(&mut args),
        "gate" => cmd_gate(&mut args),
        "degrade" => cmd_degrade(&mut args),
        other => Err(format!(
            "unknown subcommand {other} (expected run, gate or degrade)"
        )),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("simreport: {e}");
            ExitCode::FAILURE
        }
    }
}
