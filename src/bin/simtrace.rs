//! `simtrace` — packet-lifecycle tracing harness and Chrome-trace exporter.
//!
//! Runs a small cluster workload with the observability probe installed,
//! then writes a Chrome trace-event JSON file (loadable in Perfetto or
//! `chrome://tracing`) and prints the per-stage latency breakdown the
//! paper's §3.2 cost analysis is built from.
//!
//! ```text
//! simtrace [pingpong|stencil] [--nodes N] [--out FILE] [--metrics]
//!          [--interval-us U] [--check] [--quiet]
//!          [--reliable] [--sack] [--drop P] [--corrupt P]
//!          [--ctrl-drop P] [--ctrl-corrupt P] [--fault-seed S]
//!          [--heartbeats] [--crash NODE,AT_US] [--restart AT_US]
//!          [--switch-out S,FROM_US,UNTIL_US]
//! ```
//!
//! * `pingpong` (default) — every node stores into, fences on, reads from
//!   and atomically increments a page homed on its ring neighbor.
//! * `stencil` — an N-node Jacobi stencil over eager-update boundary
//!   pages (the simbench workload at trace-friendly scale).
//! * `--metrics` — sample congestion metrics while running and print the
//!   registry.
//! * `--reliable` — run the link-level reliability protocol (checksum +
//!   seq + ack/retransmit); `--drop P` / `--corrupt P` additionally
//!   inject seeded frame faults (implies `--reliable`, since a lossy
//!   fabric without recovery wedges the workload), so the trace shows
//!   `dropped`, `retransmit` and `credit-resync` lifecycle points.
//!   `--ctrl-drop P` / `--ctrl-corrupt P` aim the injector at the
//!   control plane instead: acks, nacks and credit-resync handshakes
//!   are lost or checksum-corrupted in flight. `--sack` switches the
//!   retransmit discipline from go-back-N to selective retransmit.
//! * `--heartbeats` — run per-link heartbeat failure detection during the
//!   workload; `--crash NODE,AT_US` crashes a workstation mid-run
//!   (permanent unless `--restart AT_US` closes the window) and
//!   `--switch-out S,FROM_US,UNTIL_US` silences a whole switch on a ring
//!   fabric. Crash-stop flags imply `--reliable --heartbeats`, and the
//!   trace gains `peer-down` / `peer-up` verdict points.
//! * `--check` — verify the export: the JSON is well-formed, timestamps
//!   are monotonically non-decreasing per track, per-stage breakdowns
//!   sum exactly to the end-to-end latencies in `NodeStats`, and the
//!   fault-recovery trace reconciles with the fabric counters (traced
//!   retransmits == `fabric_retransmits()`, traced drops == injector
//!   drops + outage drops + link-layer discards, traced credit-resync
//!   events == resync probes issued + resyncs applied, control-frame
//!   checksum discards == injector control corruptions, no drops traced
//!   on a lossless run, conservation intact). Exits non-zero on any
//!   violation. Under a crash-stop plan the masking checks give way to
//!   verdict reconciliation: every traced `peer-down` names a site inside
//!   a declared crash window, every `peer-up` follows a declared restart,
//!   a declared crash produced at least one verdict, and a crash-free run
//!   traced no verdicts at all.
//!
//! Dependency-free by design (hand-rolled JSON both ways) so it runs in
//! offline/vendored environments.

use std::collections::HashMap;
use std::process::ExitCode;

use telegraphos::observe::{
    breakdown_report, chrome_events, chrome_trace_json, json_is_wellformed, ChromeEvent,
};
use telegraphos::{Cluster, CrashWindow, RetxMode, TraceCollector};
use telegraphos_suite::harness::{self, HarnessOptions, StencilCheck};
use tg_sim::{MetricsRegistry, SimTime};
use tg_wire::trace::{OpKind, PacketEvent, Site, Stage};

struct Options {
    workload: String,
    nodes: u16,
    out: String,
    metrics: bool,
    interval_us: u64,
    check: bool,
    quiet: bool,
    reliable: bool,
    sack: bool,
    drop: f64,
    corrupt: f64,
    ctrl_drop: f64,
    ctrl_corrupt: f64,
    fault_seed: u64,
    heartbeats: bool,
    crash: Option<(u16, u64)>,
    restart_us: Option<u64>,
    switch_out: Option<(u16, u64, u64)>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workload: "pingpong".to_string(),
        nodes: 4,
        out: "trace.json".to_string(),
        metrics: false,
        interval_us: 1,
        check: false,
        quiet: false,
        reliable: false,
        sack: false,
        drop: 0.0,
        corrupt: 0.0,
        ctrl_drop: 0.0,
        ctrl_corrupt: 0.0,
        fault_seed: 0xFA_0001,
        heartbeats: false,
        crash: None,
        restart_us: None,
        switch_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "pingpong" | "stencil" => opts.workload = arg,
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a value")?;
                opts.nodes = v.parse().map_err(|_| format!("bad --nodes {v}"))?;
            }
            "--out" => opts.out = args.next().ok_or("--out needs a value")?,
            "--interval-us" => {
                let v = args.next().ok_or("--interval-us needs a value")?;
                opts.interval_us = v.parse().map_err(|_| format!("bad --interval-us {v}"))?;
            }
            "--metrics" => opts.metrics = true,
            "--check" => opts.check = true,
            "--quiet" => opts.quiet = true,
            "--reliable" => opts.reliable = true,
            "--sack" => opts.sack = true,
            "--drop" => {
                let v = args.next().ok_or("--drop needs a value")?;
                opts.drop = v.parse().map_err(|_| format!("bad --drop {v}"))?;
            }
            "--corrupt" => {
                let v = args.next().ok_or("--corrupt needs a value")?;
                opts.corrupt = v.parse().map_err(|_| format!("bad --corrupt {v}"))?;
            }
            "--ctrl-drop" => {
                let v = args.next().ok_or("--ctrl-drop needs a value")?;
                opts.ctrl_drop = v.parse().map_err(|_| format!("bad --ctrl-drop {v}"))?;
            }
            "--ctrl-corrupt" => {
                let v = args.next().ok_or("--ctrl-corrupt needs a value")?;
                opts.ctrl_corrupt = v.parse().map_err(|_| format!("bad --ctrl-corrupt {v}"))?;
            }
            "--fault-seed" => {
                let v = args.next().ok_or("--fault-seed needs a value")?;
                opts.fault_seed = v.parse().map_err(|_| format!("bad --fault-seed {v}"))?;
            }
            "--heartbeats" => opts.heartbeats = true,
            "--crash" => {
                let v = args.next().ok_or("--crash needs NODE,AT_US")?;
                let parts: Vec<_> = v.split(',').collect();
                let parsed = (parts.len() == 2)
                    .then(|| Some((parts[0].parse().ok()?, parts[1].parse().ok()?)))
                    .flatten();
                opts.crash = Some(parsed.ok_or(format!("bad --crash {v} (want NODE,AT_US)"))?);
            }
            "--restart" => {
                let v = args.next().ok_or("--restart needs AT_US")?;
                opts.restart_us = Some(v.parse().map_err(|_| format!("bad --restart {v}"))?);
            }
            "--switch-out" => {
                let v = args
                    .next()
                    .ok_or("--switch-out needs SWITCH,FROM_US,UNTIL_US")?;
                let parts: Vec<_> = v.split(',').collect();
                let parsed = (parts.len() == 3)
                    .then(|| {
                        Some((
                            parts[0].parse().ok()?,
                            parts[1].parse().ok()?,
                            parts[2].parse().ok()?,
                        ))
                    })
                    .flatten();
                opts.switch_out = Some(parsed.ok_or(format!(
                    "bad --switch-out {v} (want SWITCH,FROM_US,UNTIL_US)"
                ))?);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if opts.nodes < 2 {
        return Err("need at least 2 nodes".to_string());
    }
    for p in [opts.drop, opts.corrupt, opts.ctrl_drop, opts.ctrl_corrupt] {
        if !(0.0..=1.0).contains(&p) {
            return Err("fault probabilities must be within [0, 1]".to_string());
        }
    }
    // Injected faults without link-level recovery would wedge the workload.
    if opts.drop > 0.0 || opts.corrupt > 0.0 || opts.ctrl_drop > 0.0 || opts.ctrl_corrupt > 0.0 {
        opts.reliable = true;
    }
    // Crash-stop windows need the reliability layer (detection and
    // structured op failure both live there) and a stepped run that
    // periodic metrics sampling does not support.
    if opts.crash.is_some() || opts.switch_out.is_some() {
        opts.reliable = true;
        opts.heartbeats = true;
        if opts.metrics {
            return Err("--metrics cannot be combined with --crash/--switch-out".to_string());
        }
    }
    if opts.restart_us.is_some() && opts.crash.is_none() {
        return Err("--restart needs --crash".to_string());
    }
    if let Some((s, _, _)) = opts.switch_out {
        if s >= opts.nodes {
            return Err("--switch-out switch index out of range (ring has one per node)".into());
        }
    }
    Ok(opts)
}

impl Options {
    fn harness(&self) -> HarnessOptions {
        HarnessOptions {
            nodes: self.nodes,
            reliable: self.reliable,
            drop: self.drop,
            corrupt: self.corrupt,
            ctrl_drop: self.ctrl_drop,
            ctrl_corrupt: self.ctrl_corrupt,
            mode: if self.sack {
                RetxMode::Sack
            } else {
                RetxMode::GoBackN
            },
            fault_seed: self.fault_seed,
            heartbeats: self.heartbeats,
            crash: self.crash,
            restart_us: self.restart_us,
            switch_out: self.switch_out,
        }
    }
}

/// Verifies the export invariants; returns a list of violations.
fn check_export(
    cluster: &Cluster,
    collector: &TraceCollector,
    events: &[ChromeEvent],
    json: &str,
) -> Vec<String> {
    let mut problems = Vec::new();
    if !json_is_wellformed(json) {
        problems.push("exported Chrome trace is not well-formed JSON".to_string());
    }
    // Monotonically non-decreasing timestamps per (pid, tid) track.
    let mut last: HashMap<(u32, u32), f64> = HashMap::new();
    for ev in events {
        let t = last.entry((ev.pid, ev.tid)).or_insert(0.0);
        if ev.ts_us < *t {
            problems.push(format!(
                "ts went backwards on track ({}, {}): {} < {}",
                ev.pid, ev.tid, ev.ts_us, t
            ));
        }
        *t = ev.ts_us;
    }
    let packets = collector.packet_events();
    let windows = cluster
        .fault_plan()
        .map(|p| p.crash_windows().to_vec())
        .unwrap_or_default();
    // The masking reconciliations below assume every fault is recovered
    // from; a crash-stop plan deliberately breaks that (ops fail
    // structurally, frames are abandoned to dead incarnations), so those
    // checks only run on crash-free plans. Crash runs get the peer-verdict
    // reconciliation at the end instead.
    let crashy = !windows.is_empty();
    if crashy {
        check_peer_verdicts(&windows, &packets, &mut problems);
        problems.extend(cluster.conservation_violations());
        return problems;
    }
    // Per-stage breakdowns telescope to the op's end-to-end window.
    for b in collector.breakdowns() {
        let total = b.total();
        let window = b.op.end.saturating_sub(b.op.start);
        if total != window {
            problems.push(format!(
                "breakdown for {} on node{} sums to {} but the op took {}",
                b.op.kind,
                b.op.node.raw(),
                total,
                window
            ));
        }
    }
    // Probe-observed latencies reconcile with the NodeStats summaries the
    // experiments read (within float rounding: summaries store microsecond
    // floats).
    let mut observed: HashMap<(u16, &'static str), (u64, f64)> = HashMap::new();
    for op in collector.op_events() {
        let e = observed
            .entry((op.node.raw(), op.kind.label()))
            .or_insert((0, 0.0));
        e.0 += 1;
        e.1 += op.end.saturating_sub(op.start).as_us_f64();
    }
    for i in 0..cluster.node_count() {
        let st = cluster.node(i).stats();
        let classes = [
            (OpKind::RemoteRead.label(), &st.remote_reads),
            (OpKind::RemoteWrite.label(), &st.remote_writes),
            (OpKind::Atomic.label(), &st.atomics),
        ];
        for (label, summary) in classes {
            let (count, sum_us) = observed.get(&(i, label)).copied().unwrap_or((0, 0.0));
            if count != summary.count() {
                problems.push(format!(
                    "node{i} {label}: probe saw {count} ops, NodeStats {}",
                    summary.count()
                ));
                continue;
            }
            let want = summary.mean() * summary.count() as f64;
            if (sum_us - want).abs() > 1e-6 * (1.0 + want.abs()) {
                problems.push(format!(
                    "node{i} {label}: probe total {sum_us:.6}us, NodeStats {want:.6}us"
                ));
            }
        }
    }
    // Fault-recovery trace reconciles with the fabric counters: the probe
    // sees exactly the retransmissions the ports count, every frame the
    // injector killed shows up as a dropped lifecycle point, and a
    // lossless run traces no drops at all. Either way, a drained fabric
    // must still conserve credits and packets.
    let stage_count = |stage: Stage| packets.iter().filter(|e| e.stage == stage).count() as u64;
    let retx = stage_count(Stage::Retransmit);
    if retx != cluster.fabric_retransmits() {
        problems.push(format!(
            "trace saw {retx} retransmits, ports count {}",
            cluster.fabric_retransmits()
        ));
    }
    // Credit-resync events reconcile exactly: every probe issued and every
    // applied resync is traced once (outage recovery included — resyncs
    // triggered by an outage window land in the same counters).
    let resync_events = stage_count(Stage::CreditResync);
    let resync_counters = cluster.fabric_resync_probes() + cluster.fabric_resyncs();
    if resync_events != resync_counters {
        problems.push(format!(
            "trace saw {resync_events} credit-resync events, ports count \
             {} probes + {} applied = {resync_counters}",
            cluster.fabric_resync_probes(),
            cluster.fabric_resyncs()
        ));
    }
    // Dropped events reconcile exactly against the port counters: every
    // injector kill (random drops + outage windows) and every link-layer
    // discard (corrupt frames, sequence gaps, duplicates) is traced once.
    // Receive-FIFO overflows are recorded as link errors without a
    // lifecycle point, so exactness is only claimed on overflow-free runs.
    let dropped = stage_count(Stage::Dropped);
    let injected = cluster
        .fault_stats()
        .map_or(0, |fs| fs.drops + fs.outage_drops);
    let discards = cluster.fabric_rx_discards();
    if cluster.link_errors().is_empty() {
        if dropped != injected + discards {
            problems.push(format!(
                "trace saw {dropped} dropped frames, counters say \
                 {injected} injected + {discards} link-layer discards"
            ));
        }
    } else if dropped < injected {
        problems.push(format!(
            "injector killed {injected} frames but only {dropped} traced as dropped"
        ));
    }
    if cluster.fault_stats().is_none() && dropped != discards {
        problems.push(format!(
            "{dropped} frames traced as dropped on a lossless run \
             ({discards} link-layer discards)"
        ));
    }
    // Control-plane reconciliation: a corrupted control frame always
    // arrives and is discarded on its checksum, so the fabric's discard
    // counter must equal the injector's corruption counter exactly.
    // (Dropped control frames never arrive and leave no receiver-side
    // trace; the retransmit/resync machinery absorbs them.)
    let ctrl_corrupts = cluster.fault_stats().map_or(0, |fs| fs.ctrl_corrupts);
    let ctrl_discards = cluster.fabric_ctrl_discards();
    if ctrl_discards != ctrl_corrupts {
        problems.push(format!(
            "fabric discarded {ctrl_discards} control frames, \
             injector corrupted {ctrl_corrupts}"
        ));
    }
    // No crash windows were declared, so no peer may have been convicted:
    // a peer-down verdict on a healthy fabric is a false conviction.
    let false_convictions = stage_count(Stage::PeerDown);
    if false_convictions > 0 {
        problems.push(format!(
            "{false_convictions} peer-down verdict(s) traced with no crash window declared"
        ));
    }
    problems.extend(cluster.conservation_violations());
    problems
}

/// Reconciles traced peer-down / peer-up verdicts against the injector's
/// declared crash schedule: every conviction names a site the plan could
/// actually have silenced, no earlier than its window opens (a dead
/// *switch* cuts node↔node heartbeat paths, so node verdicts during a
/// switch window are legitimate indirect observations); every
/// rehabilitation follows a closed window; and a crash window the run
/// straddled produced at least one conviction.
fn check_peer_verdicts(
    windows: &[CrashWindow],
    packets: &[PacketEvent],
    problems: &mut Vec<String>,
) {
    // Switch peers ride in the trace id with the top bit set (node ids
    // stay below it); see the switch-side `emit_peer`.
    let peer_of = |ev: &PacketEvent| -> Site {
        let raw = ev.trace.src().raw();
        if raw & 0x8000 != 0 {
            Site::Switch(raw & 0x7fff)
        } else {
            Site::Node(tg_wire::NodeId::new(raw))
        }
    };
    // A window explains a verdict about `peer` observed from `from` if it
    // names the peer itself, the observer (a crashed workstation's world
    // goes dark: its own detector convicts everyone, then rehabilitates
    // them after its restart), or a switch (whose silence severs paths
    // between arbitrary node pairs).
    let explains = |w: &CrashWindow, peer: Site, observer: Site| -> bool {
        w.site == peer || w.site == observer || matches!(w.site, Site::Switch(_))
    };
    let mut convictions = 0u64;
    for ev in packets.iter().filter(|e| e.stage == Stage::PeerDown) {
        let peer = peer_of(ev);
        convictions += 1;
        if !windows
            .iter()
            .any(|w| explains(w, peer, ev.site) && ev.at >= w.from)
        {
            problems.push(format!(
                "peer-down verdict for {peer:?} at {} matches no declared crash window",
                ev.at
            ));
        }
    }
    for ev in packets.iter().filter(|e| e.stage == Stage::PeerUp) {
        let peer = peer_of(ev);
        if !windows
            .iter()
            .any(|w| explains(w, peer, ev.site) && w.until != SimTime::MAX && ev.at >= w.until)
        {
            problems.push(format!(
                "peer-up verdict for {peer:?} at {} precedes any declared restart",
                ev.at
            ));
        }
    }
    // Only demand a conviction when the fabric was still carrying traffic
    // once the window opened — a crash scheduled after quiescence (or
    // after heartbeats stopped) convicts no one, and that is correct.
    let straddled = windows.iter().any(|w| {
        packets
            .iter()
            .any(|ev| ev.at >= w.from && !matches!(ev.stage, Stage::PeerDown | Stage::PeerUp))
    });
    if convictions == 0 && straddled {
        problems.push("a crash was declared but no peer-down verdict was traced".to_string());
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simtrace: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (mut cluster, stencil_check): (Cluster, Option<StencilCheck>) = match opts.workload.as_str()
    {
        "pingpong" => (harness::build_pingpong(&opts.harness()), None),
        _ => {
            let (c, check) = harness::build_stencil(&opts.harness(), 8, 4);
            (c, Some(check))
        }
    };
    let collector = cluster.enable_tracing();

    let hopts = opts.harness();
    let mut metrics = MetricsRegistry::new();
    if opts.metrics {
        cluster.run_sampled(SimTime::from_us(opts.interval_us), &mut metrics);
        if !cluster.all_halted() {
            eprintln!("simtrace: workload deadlocked");
            return ExitCode::FAILURE;
        }
    } else if !harness::run_cluster(&mut cluster, &hopts) {
        eprintln!("simtrace: workload deadlocked");
        return ExitCode::FAILURE;
    }
    // Under a crash-stop plan only the survivors' results are checkable,
    // so the stencil cross-check (which needs every strip) is skipped.
    if !hopts.any_crash() {
        if let Some(check) = &stencil_check {
            if let Err(e) = harness::verify_stencil(&cluster, check) {
                eprintln!("simtrace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let ops = collector.op_events();
    let packets = collector.packet_events();
    let events = chrome_events(&ops, &packets);
    let json = chrome_trace_json(&events);
    std::fs::write(&opts.out, &json).expect("write trace file");

    if !opts.quiet {
        println!(
            "{}: {} ops, {} packet events, {} trace events -> {}",
            opts.workload,
            ops.len(),
            packets.len(),
            events.len(),
            opts.out
        );
        print!("{}", breakdown_report(&collector.breakdowns()));
        if opts.reliable {
            let fs = cluster.fault_stats();
            println!(
                "recovery: {} retransmits ({} bytes), {} resyncs, {} frames lost, \
                 {} corrupted, {} ctrl lost, {} ctrl corrupted",
                cluster.fabric_retransmits(),
                cluster.fabric_retx_bytes(),
                cluster.fabric_resyncs(),
                fs.as_ref().map_or(0, |s| s.drops + s.outage_drops),
                fs.as_ref().map_or(0, |s| s.corrupts),
                fs.as_ref().map_or(0, |s| s.ctrl_drops),
                fs.as_ref().map_or(0, |s| s.ctrl_corrupts),
            );
        }
        if opts.metrics {
            print!("{metrics}");
        }
    }

    if opts.check {
        let problems = check_export(&cluster, &collector, &events, &json);
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("simtrace check: {p}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "check: ok (json well-formed, tracks monotonic, breakdowns and \
             fault-recovery counters reconcile)"
        );
    }
    ExitCode::SUCCESS
}
