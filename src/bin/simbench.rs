//! `simbench` — the engine performance harness.
//!
//! Drives four representative workloads through the simulator and writes
//! `BENCH_engine.json` with events/sec, wall time and peak queue depth for
//! each, establishing the repository's perf trajectory:
//!
//! 1. `ping_pong` — a two-component event-engine microbench (pure
//!    scheduler hot path, queue depth ~1).
//! 2. `ping_pong_hooked` — the same microbench with a delivery hook
//!    installed, tracking the per-event cost of observability.
//! 3. `ping_pong_net` — a bidirectional two-endpoint stream through a
//!    star fabric (switch routing + credit flow control, no link-level
//!    reliability).
//! 4. `ping_pong_reliable` — the same fabric stream with the link-level
//!    reliability protocol on (framing, checksums, per-link sequence
//!    numbers, acks). Compare events/sec against `ping_pong_net` for the
//!    per-event cost of the reliability layer, which must stay small.
//! 5. `stencil_16` — a 16-node Jacobi stencil over eager-update boundary
//!    pages via `tg-workloads` (full cluster stack, deep queues).
//! 6. `stencil_16_traced` — the same stencil with packet tracing and
//!    metric sampling enabled: the analysis-ON cost. The plain
//!    `stencil_16` number is the analysis-OFF datapoint — the attribution
//!    machinery is probe-gated, so its hot-path cost with analysis off
//!    must stay ~0 (compare against the previous baseline).
//! 7. `proto_sweep` — a coherence-interleaving sweep of the owner
//!    protocol via `tg-proto` (adversarial RNG-driven delivery).
//!
//! Besides `BENCH_engine.json`, a `tg-report-v2` `report_bench.json` is
//! written for the CI perf gate: deterministic structural counts
//! (`events`, `peak_queue_depth`) under `metrics` (gate tolerance 0) and
//! machine-dependent wall-clock numbers under `throughput` (gated
//! loosely or skipped).
//!
//! Deliberately dependency-free (plain `std::time::Instant`, hand-rolled
//! JSON) so it runs in offline/vendored environments. Each workload is run
//! a few times and the best wall time is reported.

use std::time::Instant;

use telegraphos_suite::harness::{self, HarnessOptions};
use tg_analyze::{Json, SCHEMA};
use tg_net::testing::{kick, SourceSink};
use tg_net::{build_network_with, NetConfig, RelParams, Topology};
use tg_proto::{owner::OwnerSerialized, Scenario};
use tg_sim::{Component, Ctx, Engine, MetricsRegistry, SimTime};
use tg_wire::{GOffset, NodeId, TimingConfig, WireMsg};

/// One measured workload.
struct Measurement {
    name: &'static str,
    /// Events (or protocol messages) delivered in one run.
    events: u64,
    /// Best wall time over the repetitions, seconds.
    wall_seconds: f64,
    /// Deepest pending-event count observed (events, not queue buckets;
    /// includes same-instant batches in flight — see
    /// `EngineStats::max_queue_len`).
    peak_queue_depth: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Runs `f` `reps` times, keeping the best wall time; `f` returns
/// `(events, peak_queue_depth)` for the run it performed.
fn measure(name: &'static str, reps: u32, mut f: impl FnMut() -> (u64, u64)) -> Measurement {
    let mut best = f64::INFINITY;
    let (mut events, mut peak) = (0, 0);
    for rep in 0..reps {
        let t0 = Instant::now();
        let (ev, pk) = f();
        let dt = t0.elapsed().as_secs_f64();
        eprintln!("  {name} rep {rep}: {dt:.3}s");
        if dt < best {
            best = dt;
        }
        events = ev;
        peak = pk;
    }
    Measurement {
        name,
        events,
        wall_seconds: best,
        peak_queue_depth: peak,
    }
}

// ---------------------------------------------------------------- ping-pong

struct Relay {
    peer: Option<tg_sim::CompId>,
    remaining: u64,
}

impl Component<u64> for Relay {
    fn on_event(&mut self, v: u64, ctx: &mut Ctx<'_, u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let dst = self.peer.unwrap_or(ctx.self_id());
            ctx.send(dst, SimTime::from_ns(10), v + 1);
        }
    }
    fn name(&self) -> &str {
        "relay"
    }
}

/// Two relays bouncing one event back and forth: the pure scheduler hot
/// path — pop, deliver, push — with no payload work.
fn ping_pong() -> (u64, u64) {
    ping_pong_inner(false)
}

/// The same microbench with a delivery hook installed (the tracing
/// fast path): quantifies the per-event cost of observability when a
/// probe is actually attached. Compare against `ping_pong` for the
/// hook-off overhead (which should be ~zero: one untaken branch).
fn ping_pong_hooked() -> (u64, u64) {
    ping_pong_inner(true)
}

fn ping_pong_inner(hooked: bool) -> (u64, u64) {
    const ROUNDS: u64 = 1_000_000;
    let mut eng: Engine<u64> = Engine::new();
    let a = eng.add(Relay {
        peer: None,
        remaining: ROUNDS / 2,
    });
    let b = eng.add(Relay {
        peer: Some(a),
        remaining: ROUNDS / 2,
    });
    eng.get_mut::<Relay>(a).unwrap().peer = Some(b);
    eng.schedule(SimTime::ZERO, a, 0);
    let hits = std::rc::Rc::new(std::cell::Cell::new(0u64));
    if hooked {
        let h = hits.clone();
        eng.set_delivery_hook(Box::new(move |_at, _seq, _dst| h.set(h.get() + 1)));
    }
    eng.run();
    let s = eng.stats();
    if hooked {
        assert_eq!(hits.get(), s.events_delivered, "hook missed deliveries");
    }
    (s.events_delivered, s.max_queue_len as u64)
}

// ---------------------------------------------------- fabric ping-pong

/// A bidirectional stream between two endpoints through a star fabric:
/// switch routing, FIFO queues and credit flow control in the loop, but
/// no link-level reliability.
fn ping_pong_net() -> (u64, u64) {
    ping_pong_net_inner(false)
}

/// The same fabric stream with the link-level reliability protocol on
/// every hop: framing, checksums, per-link sequence numbers and acks.
/// The events/sec gap against `ping_pong_net` is the per-event cost of
/// the reliability layer on a lossless fabric.
fn ping_pong_reliable() -> (u64, u64) {
    ping_pong_net_inner(true)
}

fn ping_pong_net_inner(reliable: bool) -> (u64, u64) {
    const MSGS: u64 = 30_000;
    let timing = TimingConfig::telegraphos_i();
    let topo = Topology::star(2);
    let config = NetConfig {
        reliability: reliable.then(RelParams::default),
        injector: None,
    };
    let mut engine = Engine::new();
    let ids: Vec<tg_sim::CompId> = (0..2)
        .map(|i| engine.add(SourceSink::new(NodeId::new(i), timing.clone())))
        .collect();
    let handles =
        build_network_with(&mut engine, &topo, &timing, &ids, &config).expect("connected");
    for (id, w) in ids.iter().zip(handles.endpoints) {
        engine
            .get_mut::<SourceSink>(*id)
            .unwrap()
            .wire(w.tx, w.rx_upstream);
    }
    for i in 0..MSGS {
        let msg = WireMsg::WriteReq {
            addr: GOffset::new(i * 8),
            val: i,
            tag: 0,
        };
        engine
            .get_mut::<SourceSink>(ids[0])
            .unwrap()
            .enqueue(NodeId::new(1), msg.clone());
        engine
            .get_mut::<SourceSink>(ids[1])
            .unwrap()
            .enqueue(NodeId::new(0), msg);
    }
    kick(&mut engine, ids[0]);
    kick(&mut engine, ids[1]);
    engine.run();
    for &id in &ids {
        let ss = engine.get::<SourceSink>(id).unwrap();
        assert_eq!(ss.received.len(), MSGS as usize, "stream wedged");
        assert_eq!(ss.retransmits(), 0, "lossless run retransmitted");
    }
    let s = engine.stats();
    (s.events_delivered, s.max_queue_len as u64)
}

// ------------------------------------------------------------- stencil_16

/// A 16-node distributed Jacobi stencil (the tests/stencil.rs setup at
/// benchmark scale): full cluster stack with fences, barriers and
/// eager-update multicast traffic.
fn stencil_16() -> (u64, u64) {
    stencil_16_inner(false)
}

/// The same stencil with the full analysis pipeline attached: packet
/// tracing probes installed cluster-wide and the congestion sampler
/// running at 1 µs. The gap against `stencil_16` is the analysis-ON
/// cost; `stencil_16` itself, unchanged across this feature, is the
/// proof that analysis-off stays free.
fn stencil_16_traced() -> (u64, u64) {
    stencil_16_inner(true)
}

fn stencil_16_inner(traced: bool) -> (u64, u64) {
    let opts = HarnessOptions {
        nodes: 16,
        ..HarnessOptions::default()
    };
    let (mut cluster, check) = harness::build_stencil(&opts, 8, 12);
    let collector = traced.then(|| cluster.enable_tracing());
    if traced {
        let mut metrics = MetricsRegistry::new();
        cluster.run_sampled(SimTime::from_us(1), &mut metrics);
        assert!(!metrics.is_empty(), "sampler recorded nothing");
    } else {
        cluster.run();
    }
    assert!(cluster.all_halted(), "stencil deadlocked");
    if let Some(c) = &collector {
        assert!(!c.packet_events().is_empty(), "probes saw no packets");
    }
    // Sanity: the distributed answer matches the sequential reference, so
    // the benchmark cannot silently measure a broken run.
    harness::verify_stencil(&cluster, &check).expect("stencil verification");
    let s = cluster.engine_stats();
    (s.events_delivered, s.max_queue_len as u64)
}

// ------------------------------------------------------------- proto sweep

/// A sweep of owner-serialized coherence runs over many adversarial
/// interleavings: the RNG-heavy protocol-exploration workload.
fn proto_sweep() -> (u64, u64) {
    const SEEDS: u64 = 2_000;
    let mut messages = 0u64;
    let mut peak = 0usize;
    for seed in 0..SEEDS {
        let out = OwnerSerialized::run(&Scenario::random(4, 8, 2, seed));
        assert!(out.converged(), "protocol diverged at seed {seed}");
        messages += out.messages;
        peak = peak.max(out.peak_in_flight);
    }
    (messages, peak as u64)
}

// ------------------------------------------------------------------- main

fn json_escape_free(name: &str) -> &str {
    debug_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn main() {
    let measurements = [
        measure("ping_pong", 5, ping_pong),
        measure("ping_pong_hooked", 5, ping_pong_hooked),
        measure("ping_pong_net", 5, ping_pong_net),
        measure("ping_pong_reliable", 5, ping_pong_reliable),
        measure("stencil_16", 5, stencil_16),
        measure("stencil_16_traced", 3, stencil_16_traced),
        measure("proto_sweep", 3, proto_sweep),
    ];

    let mut json = String::from("{\n  \"bench\": \"engine\",\n  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        println!(
            "{:<18} {:>9} events  {:>9.4}s  {:>12.0} events/s  peak queue {}",
            m.name,
            m.events,
            m.wall_seconds,
            m.events_per_sec(),
            m.peak_queue_depth
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_seconds\": {:.6}, \
             \"events_per_sec\": {:.1}, \"peak_queue_depth\": {}}}{}\n",
            json_escape_free(m.name),
            m.events,
            m.wall_seconds,
            m.events_per_sec(),
            m.peak_queue_depth,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");

    // The analysis-cost datapoint: tracing + sampling ON vs OFF on the
    // same stencil. The OFF number's stability across commits (gated in
    // CI) is the "analysis-off hot-path cost stays ~0" guarantee.
    let off = measurements.iter().find(|m| m.name == "stencil_16");
    let on = measurements.iter().find(|m| m.name == "stencil_16_traced");
    if let (Some(off), Some(on)) = (off, on) {
        if on.events_per_sec() > 0.0 {
            println!(
                "analysis cost: stencil_16 traced/off wall ratio {:.2}x \
                 ({:.0} vs {:.0} events/s)",
                off.events_per_sec() / on.events_per_sec(),
                on.events_per_sec(),
                off.events_per_sec()
            );
        }
    }

    // tg-report-v2 companion for the CI gate: deterministic structural
    // counts under `metrics`, machine-dependent timings under
    // `throughput`.
    let mut report = Json::obj();
    report.set("schema", Json::Str(SCHEMA.to_string()));
    report.set("name", Json::Str("bench".to_string()));
    let mut deterministic = Json::obj();
    let mut throughput = Json::obj();
    for m in &measurements {
        deterministic.set(&format!("{}.events", m.name), Json::Num(m.events as f64));
        deterministic.set(
            &format!("{}.peak_queue_depth", m.name),
            Json::Num(m.peak_queue_depth as f64),
        );
        throughput.set(
            &format!("{}.events_per_sec", m.name),
            Json::Num(m.events_per_sec()),
        );
        throughput.set(
            &format!("{}.wall_seconds", m.name),
            Json::Num(m.wall_seconds),
        );
    }
    report.set("metrics", deterministic);
    report.set("throughput", throughput);
    std::fs::write("report_bench.json", report.to_string_pretty())
        .expect("write report_bench.json");
    println!("wrote BENCH_engine.json and report_bench.json");
}
